exception Error of string * Lexer.pos

(* Tokens are pulled from the lexer on demand (one token of lookahead,
   materialised lazily for [peek2]) — building the whole token list up
   front made parsing superlinear on large inputs: the list survives
   minor collections mid-lex and every cell gets promoted. *)
type state = {
  lex : Lexer.state;
  mutable cur : Lexer.token * Lexer.pos;
  mutable ahead : (Lexer.token * Lexer.pos) option;
}

let peek st = fst st.cur

let peek2 st =
  match st.ahead with
  | Some (tok, _) -> tok
  | None ->
    if fst st.cur = Lexer.EOF then Lexer.EOF
    else begin
      let t = Lexer.next_token st.lex in
      st.ahead <- Some t;
      fst t
    end

let cur_pos st = snd st.cur

let advance st =
  match st.ahead with
  | Some t ->
    st.cur <- t;
    st.ahead <- None
  | None ->
    if fst st.cur <> Lexer.EOF then st.cur <- Lexer.next_token st.lex

let fail st msg = raise (Error (msg, cur_pos st))

let expect st tok what =
  if peek st = tok then advance st
  else
    fail st
      (Format.asprintf "expected %s but found %a" what Lexer.pp_token (peek st))

(* A name term: relation or peer position. *)
let name_term st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    Term.str s
  | Lexer.STRING s ->
    advance st;
    if s = "" then fail st "empty string cannot be a relation or peer name";
    Term.str s
  | Lexer.VAR x ->
    advance st;
    Term.Var x
  | tok ->
    fail st
      (Format.asprintf "expected a relation or peer name but found %a"
         Lexer.pp_token tok)

(* A term in argument position. Bare identifiers denote string values. *)
let term st =
  match peek st with
  | Lexer.INT n -> advance st; Term.Const (Value.Int n)
  | Lexer.FLOAT f -> advance st; Term.Const (Value.Float f)
  | Lexer.STRING s -> advance st; Term.Const (Value.String s)
  | Lexer.BOOL b -> advance st; Term.Const (Value.Bool b)
  | Lexer.IDENT s -> advance st; Term.Const (Value.String s)
  | Lexer.VAR x -> advance st; Term.Var x
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT n -> advance st; Term.Const (Value.Int (-n))
    | Lexer.FLOAT f -> advance st; Term.Const (Value.Float (-.f))
    | tok ->
      fail st
        (Format.asprintf "expected a number after '-' but found %a"
           Lexer.pp_token tok))
  | tok -> fail st (Format.asprintf "expected a term but found %a" Lexer.pp_token tok)

let comma_list st elem =
  if peek st = Lexer.RPAREN then []
  else
    let rec go acc =
      let x = elem st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (x :: acc)
      end
      else List.rev (x :: acc)
    in
    go []

let atom st =
  let rel = name_term st in
  expect st Lexer.AT "'@'";
  let peer = name_term st in
  expect st Lexer.LPAREN "'('";
  let args = comma_list st term in
  expect st Lexer.RPAREN "')'";
  Atom.make ~rel ~peer args

(* Rule heads additionally allow aggregate arguments: count($x), sum($x),
   min($x), max($x), avg($x). *)
type head_arg =
  | Plain of Term.t
  | Agg of Aggregate.spec

let head_arg st =
  match peek st, peek2 st with
  | Lexer.IDENT s, Lexer.LPAREN when Aggregate.op_of_name s <> None ->
    let op = Option.get (Aggregate.op_of_name s) in
    advance st;
    advance st;
    (match peek st with
    | Lexer.VAR v ->
      advance st;
      expect st Lexer.RPAREN "')'";
      Agg { Aggregate.op; var = v }
    | tok ->
      fail st
        (Format.asprintf "expected a variable inside %s(...) but found %a" s
           Lexer.pp_token tok))
  | _, _ -> Plain (term st)

let head_atom st =
  let rel = name_term st in
  expect st Lexer.AT "'@'";
  let peer = name_term st in
  expect st Lexer.LPAREN "'('";
  let args = comma_list st head_arg in
  expect st Lexer.RPAREN "')'";
  let terms =
    List.map
      (function Plain t -> t | Agg spec -> Term.Var spec.Aggregate.var)
      args
  in
  let aggs =
    List.concat
      (List.mapi
         (fun i -> function Agg spec -> [ (i, spec) ] | Plain _ -> [])
         args)
  in
  (Atom.make ~rel ~peer terms, aggs)

(* Expressions (for builtins): + - * / with usual precedence. *)
let rec expr st =
  let lhs = expr_term st in
  expr_rest st lhs

and expr_rest st lhs =
  match peek st with
  | Lexer.PLUS ->
    advance st;
    expr_rest st (Expr.Add (lhs, expr_term st))
  | Lexer.MINUS ->
    advance st;
    expr_rest st (Expr.Sub (lhs, expr_term st))
  | _ -> lhs

and expr_term st =
  let lhs = expr_factor st in
  expr_term_rest st lhs

and expr_term_rest st lhs =
  match peek st with
  | Lexer.STAR ->
    advance st;
    expr_term_rest st (Expr.Mul (lhs, expr_factor st))
  | Lexer.SLASH ->
    advance st;
    expr_term_rest st (Expr.Div (lhs, expr_factor st))
  | _ -> lhs

and expr_factor st =
  match peek st with
  | Lexer.INT n -> advance st; Expr.Const (Value.Int n)
  | Lexer.FLOAT f -> advance st; Expr.Const (Value.Float f)
  | Lexer.STRING s -> advance st; Expr.Const (Value.String s)
  | Lexer.BOOL b -> advance st; Expr.Const (Value.Bool b)
  | Lexer.VAR x -> advance st; Expr.Var x
  | Lexer.MINUS -> (
    advance st;
    (* Fold unary minus on numeric literals into the constant. *)
    match peek st with
    | Lexer.INT n ->
      advance st;
      Expr.Const (Value.Int (-n))
    | Lexer.FLOAT f ->
      advance st;
      Expr.Const (Value.Float (-.f))
    | _ -> Expr.Sub (Expr.Const (Value.Int 0), expr_factor st))
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN "')'";
    e
  | tok ->
    fail st (Format.asprintf "expected an expression but found %a" Lexer.pp_token tok)

let cmpop st =
  match peek st with
  | Lexer.EQ2 -> advance st; Some Literal.Eq
  | Lexer.NEQ -> advance st; Some Literal.Neq
  | Lexer.LT -> advance st; Some Literal.Lt
  | Lexer.LE -> advance st; Some Literal.Le
  | Lexer.GT -> advance st; Some Literal.Gt
  | Lexer.GE -> advance st; Some Literal.Ge
  | _ -> None

(* An atom starts with a name term followed by '@'. *)
let starts_atom st =
  match peek st, peek2 st with
  | (Lexer.IDENT _ | Lexer.STRING _ | Lexer.VAR _), Lexer.AT -> true
  | _, _ -> false

let literal st =
  match peek st with
  | Lexer.KW_NOT ->
    advance st;
    Literal.Neg (atom st)
  | Lexer.VAR x when peek2 st = Lexer.ASSIGN ->
    advance st;
    advance st;
    Literal.Assign (x, expr st)
  | _ ->
    if starts_atom st then Literal.Pos (atom st)
    else
      let e1 = expr st in
      (match cmpop st with
      | Some op -> Literal.Cmp (op, e1, expr st)
      | None ->
        fail st
          (Format.asprintf "expected a comparison operator but found %a"
             Lexer.pp_token (peek st)))

let body st =
  let rec go acc =
    let l = literal st in
    if peek st = Lexer.COMMA then begin
      advance st;
      go (l :: acc)
    end
    else List.rev (l :: acc)
  in
  go []

let ident st what =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | Lexer.STRING s when s <> "" -> advance st; s
  | tok -> fail st (Format.asprintf "expected %s but found %a" what Lexer.pp_token tok)

let decl st kind =
  advance st (* ext / int *);
  let rel = ident st "a relation name" in
  expect st Lexer.AT "'@'";
  let peer = ident st "a peer name" in
  expect st Lexer.LPAREN "'('";
  let cols = comma_list st (fun st -> ident st "a column name") in
  expect st Lexer.RPAREN "')'";
  Decl.make ~kind ~rel ~peer cols

let fact_of_atom st a =
  match Atom.to_fact a with
  | Some f -> f
  | None -> fail st "a fact must be ground (no variables)"

let statement st =
  match peek st with
  | Lexer.KW_EXT -> Program.Decl (decl st Decl.Extensional)
  | Lexer.KW_INT -> Program.Decl (decl st Decl.Intensional)
  | _ ->
    let head, aggs = head_atom st in
    if peek st = Lexer.COLONDASH then begin
      advance st;
      let b = body st in
      Program.Rule (Rule.make_agg ~aggs ~head ~body:b)
    end
    else if aggs <> [] then fail st "a fact cannot contain aggregates"
    else Program.Fact (fact_of_atom st head)

let program_toks st =
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.SEMI ->
      advance st;
      go acc
    | _ ->
      let s = statement st in
      (match peek st with
      | Lexer.SEMI -> advance st
      | Lexer.EOF -> ()
      | tok ->
        fail st
          (Format.asprintf "expected ';' or end of input but found %a"
             Lexer.pp_token tok));
      go (s :: acc)
  in
  go []

let with_state src f =
  (* Lexer errors can now surface at any pull, not just up front. *)
  try
    let lex = Lexer.init src in
    let st = { lex; cur = Lexer.next_token lex; ahead = None } in
    let x = f st in
    (match peek st with
    | Lexer.EOF -> ()
    | tok ->
      fail st
        (Format.asprintf "trailing input starting at %a" Lexer.pp_token tok));
    x
  with Lexer.Error (msg, p) -> raise (Error (msg, p))

let parse_program src = with_state src program_toks

let parse_rule src =
  with_state src (fun st ->
      let head, aggs = head_atom st in
      expect st Lexer.COLONDASH "':-'";
      let b = body st in
      if peek st = Lexer.SEMI then advance st;
      Rule.make_agg ~aggs ~head ~body:b)

let parse_fact src =
  with_state src (fun st ->
      let a = atom st in
      if peek st = Lexer.SEMI then advance st;
      fact_of_atom st a)

let parse_atom src = with_state src atom
let parse_literal src = with_state src literal

let wrap f src =
  match f src with
  | x -> Ok x
  | exception Error (msg, p) ->
    Result.Error (Printf.sprintf "line %d, col %d: %s" p.Lexer.line p.Lexer.col msg)

let program src = wrap parse_program src
let rule src = wrap parse_rule src
let fact src = wrap parse_fact src
