(** Recursive-descent parser for WebdamLog concrete syntax.

    {v
    // declarations
    ext pictures@Jules(id, name, owner, data);
    int attendeePictures@Jules(id, name, owner, data);

    // a fact
    pictures@sigmod(32, "sea.jpg", "Émilien", "100...");

    // a rule with a peer variable (delegation happens at evaluation)
    attendeePictures@Jules($id, $name, $owner, $data) :-
      selectedAttendee@Jules($attendee),
      pictures@$attendee($id, $name, $owner, $data);
    v}

    Statements are separated by [;] (optional before end of input).
    Builtin literals: [not a@p(…)], [$x := expr], [e1 < e2] (also
    [<=], [>], [>=], [==]/[=], [!=]).

    Builtin relation modules are declared with a contextual keyword —
    [builtin window recent@p(item) with size=8] — parsed only when the
    token after [builtin] is not [@], so relations named [builtin]
    keep working. *)

exception Error of string * Lexer.pos

val parse_program : string -> Program.t
val parse_rule : string -> Rule.t
val parse_fact : string -> Fact.t
val parse_atom : string -> Atom.t
val parse_literal : string -> Literal.t

val parse_program_located : ?file:string -> string -> Located.program
val parse_rule_located : ?file:string -> string -> Located.rule
(** Like {!parse_program} / {!parse_rule} but every statement keeps the
    {!Span} of its tokens ([file] defaults to ["<string>"]); feed the
    result to [Wdl_analysis] for spanned diagnostics. *)

val program : string -> (Program.t, string) result
val rule : string -> (Rule.t, string) result
val fact : string -> (Fact.t, string) result
(** [Error msg] carries a ["line L, col C: …"] message. *)

val program_located :
  ?file:string -> string -> (Located.program, string * Lexer.pos) result
(** Non-raising variant of {!parse_program_located}; the error keeps
    the raw message and position so callers can render it as a
    diagnostic. *)
