type t = {
  file : string;
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let make ~file ~start_line ~start_col ~end_line ~end_col =
  { file; start_line; start_col; end_line; end_col }

let point ~file ~line ~col =
  { file; start_line = line; start_col = col; end_line = line; end_col = col }

let join a b =
  {
    file = a.file;
    start_line = a.start_line;
    start_col = a.start_col;
    end_line = b.end_line;
    end_col = b.end_col;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.start_line b.start_line with
    | 0 -> (
      match Int.compare a.start_col b.start_col with
      | 0 -> (
        match Int.compare a.end_line b.end_line with
        | 0 -> Int.compare a.end_col b.end_col
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let equal a b = compare a b = 0
let pp ppf s = Format.fprintf ppf "%s:%d:%d" s.file s.start_line s.start_col

let pp_range ppf s =
  if s.start_line = s.end_line then
    Format.fprintf ppf "%s:%d:%d-%d" s.file s.start_line s.start_col s.end_col
  else
    Format.fprintf ppf "%s:%d:%d-%d:%d" s.file s.start_line s.start_col
      s.end_line s.end_col
