(** Source spans: a half-open region of one source file, 1-based lines
    and columns. Threaded from the lexer through the parser onto
    {!Located} statements so that every diagnostic can carry a
    [file:line:col] position. *)

type t = {
  file : string;
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;  (** exclusive: the column just past the last token *)
}

val make :
  file:string ->
  start_line:int ->
  start_col:int ->
  end_line:int ->
  end_col:int ->
  t

val point : file:string -> line:int -> col:int -> t
(** A zero-width span (used for lexer/parser error positions). *)

val join : t -> t -> t
(** [join a b] spans from the start of [a] to the end of [b]; the file
    is taken from [a]. *)

val compare : t -> t -> int
(** Lexicographic: file, then start, then end — the order diagnostics
    are reported in. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** [file:line:col] — the start position only, the form editors jump
    to. *)

val pp_range : Format.formatter -> t -> unit
(** [file:l:c-c] or [file:l:c-l:c] for multi-line spans. *)
