open Wdl_syntax
module Peer = Webdamlog.Peer
module System = Webdamlog.System

let fmt pp v = Format.asprintf "%a" pp v
let esc = Httpd.html_escape

let page title body =
  Httpd.html
    (Printf.sprintf
       {|<!doctype html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 pre, code { background: #f4f4f4; }
 pre { padding: .5em; }
 h2 { border-bottom: 1px solid #ccc; }
 form.inline { display: inline; }
 .pending { background: #fff3cd; padding: .5em; margin: .5em 0; }
</style></head><body>%s</body></html>|}
       (esc title) body)

let peer_url name = "/peer/" ^ esc name

let index sys =
  let rows =
    System.peers sys
    |> List.map (fun p ->
           let name = Peer.name p in
           Printf.sprintf
             "<li><a href=\"%s\">%s</a> — stage %d, %d relation(s), %d rule(s)%s</li>"
             (peer_url name) (esc name) (Peer.stage_number p)
             (List.length (Peer.relation_names p))
             (List.length (Peer.rules p))
             (match Peer.pending_delegations p with
             | [] -> ""
             | l -> Printf.sprintf " — <b>%d pending delegation(s)</b>" (List.length l)))
    |> String.concat "\n"
  in
  page "WebdamLog peers"
    (Printf.sprintf "<h1>WebdamLog peers</h1><ul>%s</ul>" rows)

let peer_page p =
  let name = Peer.name p in
  let buf = Buffer.create 4096 in
  let w fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  w "<h1>peer %s</h1><p><a href=\"/\">&larr; all peers</a></p>" (esc name);
  (match Peer.pending_delegations p with
  | [] -> ()
  | pending ->
    w "<h2>Pending delegations</h2>";
    List.iter
      (fun (src, rule) ->
        let rule_s = fmt Rule.pp rule in
        w
          {|<div class="pending"><b>%s</b> asks to install:<pre>%s</pre>
            <form class="inline" method="post" action="%s/accept">
              <input type="hidden" name="src" value="%s">
              <input type="hidden" name="rule" value="%s">
              <button>Accept</button></form>
            <form class="inline" method="post" action="%s/reject">
              <input type="hidden" name="src" value="%s">
              <input type="hidden" name="rule" value="%s">
              <button>Reject</button></form></div>|}
          (esc src) (esc rule_s) (peer_url name) (esc src) (esc rule_s)
          (peer_url name) (esc src) (esc rule_s))
      pending);
  w "<h2>Relations</h2>";
  List.iter
    (fun rel ->
      let facts = Peer.query p rel in
      w "<h3>%s (%d)</h3><pre>" (esc rel) (List.length facts);
      List.iter (fun f -> w "%s;\n" (esc (fmt Fact.pp f))) facts;
      w "</pre>")
    (Peer.relation_names p);
  w "<h2>Program</h2><pre>";
  List.iter (fun r -> w "%s;\n" (esc (fmt Rule.pp r))) (Peer.rules p);
  w "</pre>";
  (match Peer.delegated_rules p with
  | [] -> ()
  | delegated ->
    w "<h2>Installed delegations</h2><pre>";
    List.iter
      (fun (src, r) -> w "// from %s\n%s;\n" (esc src) (esc (fmt Rule.pp r)))
      delegated;
    w "</pre>");
  w
    {|<h2>Add statements</h2>
      <form method="post" action="%s/statement">
      <textarea name="stmt" rows="4" cols="70"
        placeholder="pictures@%s(1, &quot;sea.jpg&quot;);"></textarea><br>
      <button>Apply</button></form>|}
    (peer_url name) (esc name);
  w
    {|<h2>Query</h2>
      <form method="get" action="%s/query">
      <input name="q" size="70" placeholder="q@%s($x) :- m@%s($x)">
      <button>Run</button></form>|}
    (peer_url name) (esc name) (esc name);
  page ("peer " ^ name) (Buffer.contents buf)

let query_page p q =
  let name = Peer.name p in
  match Peer.ask p q with
  | Error msg ->
    page "query error"
      (Printf.sprintf "<h1>query error</h1><pre>%s</pre><p><a href=\"%s\">back</a></p>"
         (esc msg) (peer_url name))
  | Ok answer ->
    let buf = Buffer.create 1024 in
    let w fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    w "<h1>query on %s</h1><pre>%s</pre><table border=\"1\" cellpadding=\"4\"><tr>"
      (esc name) (esc q);
    List.iter (fun c -> w "<th>%s</th>" (esc c)) answer.Peer.columns;
    w "</tr>";
    List.iter
      (fun row ->
        w "<tr>";
        List.iter (fun v -> w "<td>%s</td>" (esc (Value.to_string v))) row;
        w "</tr>")
      answer.Peer.rows;
    w "</table><p>%d row(s)</p>" (List.length answer.Peer.rows);
    (match answer.Peer.requires_delegation with
    | [] -> ()
    | ds ->
      w "<p>Running this permanently would delegate:</p><pre>";
      List.iter
        (fun (dst, r) -> w "// at %s\n%s;\n" (esc dst) (esc (fmt Rule.pp r)))
        ds;
      w "</pre>");
    w "<p><a href=\"%s\">back</a></p>" (peer_url name);
    page "query" (Buffer.contents buf)

(* /peer/NAME or /peer/NAME/ACTION *)
let split_path path =
  match String.split_on_char '/' path with
  | [ ""; "peer"; name ] -> Some (name, None)
  | [ ""; "peer"; name; action ] -> Some (name, Some action)
  | _ -> None

let handler sys ~settle (req : Httpd.request) =
  match req.Httpd.meth, req.Httpd.path with
  | "GET", "/" -> index sys
  | "GET", "/metrics" ->
    {
      Httpd.status = 200;
      content_type = Wdl_obs.Prometheus.content_type;
      body = Wdl_obs.Prometheus.expose ();
    }
  | "GET", "/trace.json" ->
    (* One viewer lane (tid) per peer, in registration order. *)
    let events =
      List.concat
        (List.mapi
           (fun i p -> Webdamlog.Trace.to_chrome ~tid:i (Peer.trace p))
           (System.peers sys))
    in
    {
      Httpd.status = 200;
      content_type = "application/json";
      body = Wdl_obs.Chrome_trace.to_json events;
    }
  | meth, path -> (
    match split_path path with
    | None -> Httpd.not_found
    | Some (name, action) -> (
      match System.find_peer sys name with
      | None -> Httpd.not_found
      | Some p -> (
        match meth, action with
        | "GET", None -> peer_page p
        | "GET", Some "query" -> (
          match List.assoc_opt "q" req.Httpd.query with
          | Some q -> query_page p q
          | None -> Httpd.text ~status:400 "missing q\n")
        | "POST", Some "statement" -> (
          let form = Httpd.form_values req.Httpd.body in
          match List.assoc_opt "stmt" form with
          | None -> Httpd.text ~status:400 "missing stmt\n"
          | Some stmt -> (
            match Peer.load_string p stmt with
            | Ok () ->
              settle ();
              Httpd.redirect ("/peer/" ^ name)
            | Error msg -> Httpd.text ~status:400 (msg ^ "\n")))
        | "POST", Some (("accept" | "reject") as which) -> (
          let form = Httpd.form_values req.Httpd.body in
          match List.assoc_opt "src" form, List.assoc_opt "rule" form with
          | Some src, Some rule_text -> (
            match Wdl_syntax.Parser.rule rule_text with
            | Error msg -> Httpd.text ~status:400 (msg ^ "\n")
            | Ok rule ->
              let changed =
                if which = "accept" then Peer.accept_delegation p ~src rule
                else Peer.reject_delegation p ~src rule
              in
              if changed then settle ();
              Httpd.redirect ("/peer/" ^ name))
          | _, _ -> Httpd.text ~status:400 "missing src/rule\n")
        | _, _ -> Httpd.not_found)))
