type t = {
  label : string;
  refresh : unit -> int;
  push : unit -> int;
}

let sync t () =
  ignore (t.push ());
  ignore (t.refresh ())

module Fact_tbl = Hashtbl.Make (struct
  type t = Wdl_syntax.Fact.t

  let equal = Wdl_syntax.Fact.equal
  let hash = Wdl_syntax.Fact.hash
end)

let watcher ?(dedup = `Exact) ~peer ~rel action =
  (* [seen fact] reports prior membership and records the fact. *)
  let seen =
    match dedup with
    | `Exact ->
      let tbl = Fact_tbl.create 64 in
      fun fact ->
        if Fact_tbl.mem tbl fact then true
        else begin
          Fact_tbl.replace tbl fact ();
          false
        end
    | `Bloom capacity ->
      let bloom = Wdl_builtin.Sketch.Bloom.for_capacity capacity in
      fun fact -> Wdl_builtin.Sketch.Bloom.add_mem bloom fact
  in
  fun () ->
    let crossed = ref 0 in
    List.iter
      (fun fact ->
        if not (seen fact) then begin
          action fact;
          incr crossed
        end)
      (Webdamlog.Peer.query peer rel);
    !crossed
