(** Wrappers (§2): adapters between WebdamLog relations and an external
    service.

    "A wrapper to some existing system X provides software that exports
    to WebdamLog one or more relations corresponding to the data in X,
    as well as rules to access/update this data."

    A wrapper owns two directions:
    - [refresh]: pull service state into the wrapper peer's relations
      (new service facts become WebdamLog insertions);
    - [push]: watch designated relations and apply new facts to the
      service (a WebdamLog-derived fact becomes a service action).

    Both are idempotent and return how many facts crossed. Register
    [sync] with {!Webdamlog.System.on_round} to keep a live system and
    its services consistent. *)

type t = {
  label : string;
  refresh : unit -> int;
  push : unit -> int;
}

val sync : t -> unit -> unit
(** [push] then [refresh], ignoring counts. *)

val watcher :
  ?dedup:[ `Exact | `Bloom of int ] ->
  peer:Webdamlog.Peer.t ->
  rel:string ->
  (Wdl_syntax.Fact.t -> unit) ->
  unit ->
  int
(** Builds a push function: calls the action exactly once per fact ever
    seen in [rel] at [peer]. [`Exact] (the default) keeps an exact
    seen-set that grows with the stream; [`Bloom n] keeps a Bloom
    filter sized for [n] facts at a 1% false-positive rate instead —
    memory stays bounded for long-lived wrappers, at the cost of
    occasionally (false positive) never firing the action for a
    fact. *)
