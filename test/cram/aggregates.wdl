// Aggregation over a toy sales relation.
ext sales@local(city, amount);
int perCity@local(city, total, best);
int overall@local(n, avgAmount);
sales@local("paris", 10);
sales@local("paris", 25);
sales@local("nyc", 40);
perCity@local($c, sum($a), max($a)) :- sales@local($c, $a);
overall@local(count($a), avg($a)) :- sales@local($c, $a);
