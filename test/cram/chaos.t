Peer-lifecycle robustness smoke: the album scenario under 40% peer
churn (two of five peers crash and recover from their journals), a
partition that heals, 25% loss and 10% duplication — with the failure
detector on and the reliable session layer wired into the system
lifecycle. The end state must be byte-identical to a fault-free
in-memory oracle given the same inserts; a second phase overloads a
bounded inbox (shed policies) and a bounded send window (block-sender).

  $ wdl-bench chaos-smoke
  CHAOS-SMOKE churn/crash/overload robustness (deterministic)
  40% churn + faults converged                   ok
  state byte-identical to fault-free oracle      ok
  dead peers evicted                             ok
  messages to dead peers dead-lettered           ok
  dead letters flushed on rejoin                 ok
  retransmits nonzero                            ok
  dup_dropped nonzero                            ok
  round loop saw no transport exceptions         ok
  bounded inbox shed under overload              ok
  inbox depth stayed within capacity             ok
  overloaded system still quiesced               ok
  bounded window stalled the sender              ok
  stalled burst fully delivered                  ok
  wrote BENCH_chaos.json
  CHAOS-SMOKE passed
  
  done.


The machine-readable record ships alongside the check lines.

  $ grep -o '"bench": "chaos"' BENCH_chaos.json
  "bench": "chaos"
  $ grep -o '"churn_pct": 40.0' BENCH_chaos.json
  "churn_pct": 40.0
  $ grep -o '"matched": true' BENCH_chaos.json
  "matched": true
  $ grep -o '"dead_letters_parked": 0' BENCH_chaos.json
  "dead_letters_parked": 0
