`wdl check` runs the static analyzer (docs/ANALYSIS.md) over programs
and exits 0 when clean, 1 on warnings, 2 on errors. A clean, fully
local program prints nothing:

  $ wdl check tc.wdl

Info-level reports (the WDL030 delegation-boundary report) are printed
but never affect the exit code:

  $ wdl check jules.wdl
  jules.wdl:6:3: info[WDL030]: delegation boundary at body literal 2: evaluation suspends here and ships the residual rule to the peer bound to $attendee, carrying bindings of $attendee

Warnings exit 1. An undeclared relation and a declared-but-unused one:

  $ cat > warn.wdl <<'EOF'
  > int out@local(x);
  > ext spare@local(a, b);
  > helper@local(1);
  > out@local($x) :- helper@local($x);
  > EOF
  $ wdl check warn.wdl
  warn.wdl:2:1: warning[WDL021]: relation spare@local is declared but never used by any fact or rule
  warn.wdl:3:1: warning[WDL020]: relation helper@local is never declared; it will be auto-created as extensional on first insertion
  [1]

Errors exit 2. A kind conflict, with a note pointing at the first
declaration:

  $ cat > err.wdl <<'EOF'
  > ext r@local(a);
  > int r@local(a);
  > r@local(1);
  > EOF
  $ wdl check err.wdl
  err.wdl:2:1: error[WDL008]: relation r@local redeclared as int (it is ext)
    note: err.wdl:1:1: first declared here
  [2]

Parse errors are WDL000 with a position:

  $ echo 'v@p($x :- a@p($x);' > bad.wdl
  $ wdl check bad.wdl
  bad.wdl:1:8: error[WDL000]: expected ')' but found :-
  [2]

Delegation lints: a body order that ships local literals to a remote
peer and back earns a reorder hint (WDL031), and a peer variable bound
by an undeclared relation is flagged as an open-ended delegation
target (WDL032):

  $ cat > deleg.wdl <<'EOF'
  > ext addr@local(peer);
  > int out@local(x, y);
  > out@local($x, $y) :- data@remote($x), local_info@local($y), bound@local($x, $y);
  > out@local($x, $x) :- book@local($p), data@$p($x);
  > EOF
  $ wdl check deleg.wdl
  deleg.wdl:1:1: warning[WDL021]: relation addr@local is declared but never used by any fact or rule
  deleg.wdl:3:22: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer remote, carrying bindings of nothing
  deleg.wdl:3:39: warning[WDL020]: relation local_info@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:3:39: warning[WDL022]: rule can never fire: local_info@local is never declared, asserted or derived, so this atom matches nothing
  deleg.wdl:3:61: warning[WDL020]: relation bound@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:4:22: warning[WDL020]: relation book@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:4:22: warning[WDL022]: rule can never fire: book@local is never declared, asserted or derived, so this atom matches nothing
  deleg.wdl:4:38: info[WDL030]: delegation boundary at body literal 2: evaluation suspends here and ships the residual rule to the peer bound to $p, carrying bindings of $p
  deleg.wdl:4:38: warning[WDL032]: delegation target $p is open-ended: it is bound by the undeclared relation book@local; any peer it names receives the residual rule and the bindings it carries
    note: deleg.wdl:4:22: the peer variable is bound here
  [1]

The same program analyzed as a different peer moves the boundary:

  $ wdl check --peer remote deleg.wdl
  deleg.wdl:1:1: warning[WDL021]: relation addr@local is declared but never used by any fact or rule
  deleg.wdl:3:22: warning[WDL020]: relation data@remote is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:3:22: warning[WDL022]: rule can never fire: data@remote is never declared, asserted or derived, so this atom matches nothing
  deleg.wdl:3:39: warning[WDL020]: relation local_info@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:3:39: info[WDL030]: delegation boundary at body literal 2: evaluation suspends here and ships the residual rule to peer local, carrying bindings of $x
  deleg.wdl:3:61: warning[WDL020]: relation bound@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:4:22: warning[WDL020]: relation book@local is never declared; it will be auto-created as extensional on first insertion
  deleg.wdl:4:22: warning[WDL022]: rule can never fire: book@local is never declared, asserted or derived, so this atom matches nothing
  deleg.wdl:4:22: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer local, carrying bindings of nothing
  [1]

Stratification failures carry the negative cycle and the rules closing
it:

  $ cat > cycle.wdl <<'EOF'
  > int win@local(x);
  > ext move@local(x, y);
  > win@local($x) :- move@local($x, $y), not win@local($y);
  > EOF
  $ wdl check cycle.wdl
  cycle.wdl:3:1: error[WDL010]: rules do not stratify: negation cycle through relation(s) win
    note: cycle.wdl:3:1: this rule derives win and reads not win
  [2]

JSON output for tooling (the CI lint gate uploads this):

  $ wdl check --format json err.wdl
  [
    {"code":"WDL008","severity":"error","file":"err.wdl","span":{"file":"err.wdl","line":2,"col":1,"end_line":2,"end_col":15},"message":"relation r@local redeclared as int (it is ext)","notes":[{"span":{"file":"err.wdl","line":1,"col":1,"end_line":1,"end_col":15},"message":"first declared here"}]}
  ]
  [2]

Multiple files aggregate to the worst exit code:

  $ wdl check tc.wdl warn.wdl err.wdl
  warn.wdl:2:1: warning[WDL021]: relation spare@local is declared but never used by any fact or rule
  warn.wdl:3:1: warning[WDL020]: relation helper@local is never declared; it will be auto-created as extensional on first insertion
  err.wdl:2:1: error[WDL008]: relation r@local redeclared as int (it is ext)
    note: err.wdl:1:1: first declared here
  [2]

The WDL031 body-order note is opt-in: the planner reorders bodies by
itself (see --no-replan), so by default the analyzer stays quiet and
--pedantic restates what the compiler will do:

  $ wdl check --pedantic deleg.wdl | grep -A2 'WDL031'
  deleg.wdl:3:22: info[WDL031]: body order as written ships 2 literal(s) that local can evaluate locally; the compiler plans this body as `local_info@local($y), bound@local($x, $y), data@remote($x)`
    note: shipped bindings: nothing as written, $y, $x as evaluated
    note: in the planned order the residual mentions only remote, so it evaluates there without further delegation

Checking several files as ONE system shares declaration and usage
tables across them. A single-file check can say nothing about a
foreign peer's relations, so hub.wdl's read of data@alice goes
unjudged; with --system, alice's program is in scope, her declaration
is found, and the pair is clean:

  $ cat > hub.wdl <<'EOF_WDL'
  > int mirror@hub(x);
  > mirror@hub($x) :- data@alice($x);
  > EOF_WDL
  $ cat > alice.wdl <<'EOF_WDL'
  > ext data@alice(x);
  > data@alice(1);
  > EOF_WDL
  $ wdl check hub.wdl alice.wdl
  hub.wdl:2:19: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer alice, carrying bindings of nothing
  $ wdl check --system hub.wdl alice.wdl
  hub.wdl:2:19: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer alice, carrying bindings of nothing

When the system covers alice but no file declares the relation hub
reads, WDL020 becomes reachable across files:

  $ cat > alice_bare.wdl <<'EOF_WDL'
  > ext profile@alice(x);
  > profile@alice(1);
  > EOF_WDL
  $ wdl check --system hub.wdl alice_bare.wdl
  hub.wdl:2:19: warning[WDL020]: relation data@alice is never declared; it will be auto-created as extensional on first insertion
  hub.wdl:2:19: warning[WDL022]: rule can never fire: data@alice is never declared, asserted or derived, so this atom matches nothing
  hub.wdl:2:19: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer alice, carrying bindings of nothing
  [1]

A relation redeclared by two files of the same system:

  $ cat > alice2.wdl <<'EOF_WDL'
  > ext data@alice(x);
  > data@alice(2);
  > EOF_WDL
  $ wdl check --system hub.wdl alice.wdl alice2.wdl
  alice2.wdl:1:1: warning[WDL065]: relation data@alice is redeclared in a different file of the system; the declarations shadow each other, so no single file owns data@alice
    note: alice.wdl:1:1: first declared here
  hub.wdl:2:19: info[WDL030]: delegation boundary at body literal 1: evaluation suspends here and ships the residual rule to peer alice, carrying bindings of nothing
  [1]

SARIF output for CI annotation uploads carries the whole rule
catalogue; spot-check the shape and the result's ruleId:

  $ wdl check --format sarif err.wdl | head -4
  {
    "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
    "version": "2.1.0",
    "runs": [
  $ wdl check --format sarif err.wdl | grep -o '"ruleId":"WDL008"'
  "ruleId":"WDL008"
