The wdl CLI drives every demo surface. Parse + pretty-print:

  $ wdl parse tc.wdl
  ext edge@local(src, dst);
  int tc@local(x, y);
  edge@local(1, 2);
  edge@local(2, 3);
  edge@local(3, 4);
  tc@local($x, $y) :- edge@local($x, $y);
  tc@local($x, $z) :- tc@local($x, $y), edge@local($y, $z);

Reject unsafe programs with a position:

  $ echo 'v@p($x) :- a@p($y);' > unsafe.wdl
  $ wdl parse unsafe.wdl
  unsafe.wdl:1:1: error[WDL001]: head variable $x is not bound by the body
  [1]

Single-peer fixpoint:

  $ wdl run --peer local tc.wdl
  fixpoint after 1 round(s)
  
  edge@local (3):
    edge@local(1, 2)
    edge@local(2, 3)
    edge@local(3, 4)
  tc@local (6):
    tc@local(1, 2)
    tc@local(1, 3)
    tc@local(1, 4)
    tc@local(2, 3)
    tc@local(2, 4)
    tc@local(3, 4)

Naive strategy computes the same relations:

  $ wdl run --peer local --strategy naive tc.wdl
  fixpoint after 1 round(s)
  
  edge@local (3):
    edge@local(1, 2)
    edge@local(2, 3)
    edge@local(3, 4)
  tc@local (6):
    tc@local(1, 2)
    tc@local(1, 3)
    tc@local(1, 4)
    tc@local(2, 3)
    tc@local(2, 4)
    tc@local(3, 4)

Ad-hoc queries (the demo's Query tab):

  $ wdl query --peer local tc.wdl 'q@local($y) :- tc@local(1, $y)'
  $y
  2
  3
  4

Multi-peer simulation with delegation:

  $ wdl simulate Jules=jules.wdl Emilien=emilien.wdl
  quiescent after 3 round(s), 2 message(s)
  
  === peer Jules ===
  attendeePictures@Jules (1):
    attendeePictures@Jules(32, "sea.jpg", "Emilien", "100...")
  selectedAttendee@Jules (1):
    selectedAttendee@Jules("Emilien")
  stats: stages=2 iterations=2 derivations=0 sent=1 received=1 installed=0 retracted=0 rejected=0 errors=0
  
  === peer Emilien ===
  pictures@Emilien (1):
    pictures@Emilien(32, "sea.jpg", "Emilien", "100...")
  delegated rules:
    from Jules: attendeePictures@Jules($id, $name, $owner, $data) :-
                  pictures@Emilien($id, $name, $owner, $data)
  stats: stages=2 iterations=2 derivations=1 sent=1 received=1 installed=1 retracted=0 rejected=0 errors=0
  

A scripted repl session:

  $ printf 'n@local(1);\nn@local(2);\nint v@local(x);\nv@local($x) :- n@local($x), $x > 1;\n.run\n.dump v\n.quit\n' | wdl repl
  WebdamLog repl: peer local (.help for commands)
  > > > > > stage 3
  >   v@local(2)
  > 
  bye

Static analysis classifies every rule:

  $ wdl analyze --peer Jules jules.wdl
  2 declaration(s), 1 fact(s), 1 rule(s)
  
  rule 1: attendeePictures@Jules($id, $name, $owner, $data) :-
            selectedAttendee@Jules($attendee),
            pictures@$attendee($id, $name, $owner, $data)
    view rule (deductive); delegation boundary dynamic from literal 2
  
  stratification: 1 stratum(s)

Why-provenance in the repl:

  $ printf 'e@local(1,2);\ne@local(2,3);\nint t@local(x,y);\nt@local($x,$y) :- e@local($x,$y);\nt@local($x,$z) :- t@local($x,$y), e@local($y,$z);\n.explain t@local(1,3);\n.quit\n' | wdl repl
  WebdamLog repl: peer local (.help for commands)
  > > > > > > t@local(1, 3)
    by t@local($x, $z) :- t@local($x, $y), e@local($y, $z)
    t@local(1, 2)
      by t@local($x, $y) :- e@local($x, $y)
      e@local(1, 2) [stored]
    e@local(2, 3) [stored]
  > 
  bye

Canonical formatting:

  $ wdl fmt tc.wdl
  ext edge@local(src, dst);
  int tc@local(x, y);
  edge@local(1, 2);
  edge@local(2, 3);
  edge@local(3, 4);
  tc@local($x, $y) :- edge@local($x, $y);
  tc@local($x, $z) :- tc@local($x, $y), edge@local($y, $z);

The classic Datalog programs run as expected — same generation:

  $ wdl run --peer local same_generation.wdl | grep -c 'sg@local'
  9

Aggregates:

  $ wdl run --peer local aggregates.wdl | sed -n '/perCity/,$p'
  perCity@local (2):
    perCity@local("nyc", 40, 40)
    perCity@local("paris", 35, 25)
  sales@local (3):
    sales@local("nyc", 40)
    sales@local("paris", 10)
    sales@local("paris", 25)

Stratified negation:

  $ wdl run --peer local negation.wdl | sed -n '/empty@local (/,/^$/p'
  empty@local (1):
    empty@local("crowdsourcing")
  registered@local (2):
    registered@local("datalog", "joe")
    registered@local("provenance", "alice")
  session@local (3):
    session@local("crowdsourcing")
    session@local("datalog")
    session@local("provenance")

Delivery guarantees: the fault-injection smoke (fixed seeds, bounded
rounds) must converge to the fault-free reference and recover a
crashed peer from its journal — a regression here fails dune runtest:

  $ wdl-bench ft-smoke
  FT-SMOKE fault-injection smoke (fixed seeds, bounded rounds)
  converged under 25% loss + 10% dup + partition ok
  relation contents byte-identical to inmem      ok
  retransmits nonzero                            ok
  dup_dropped nonzero                            ok
  no link given up                               ok
  round loop saw no transport exceptions         ok
  journal replay restored pre-crash inbox        ok
  restarted peer reconverged                     ok
  FT-SMOKE passed
  
  done.

Observability: the registry snapshot after a simulated run is
deterministic (histograms print observation counts, not durations):

  $ wdl simulate --metrics Jules=jules.wdl Emilien=emilien.wdl | sed -n '/=== metrics ===/,$p'
  === metrics ===
  wdl_analysis_warnings_total{peer="Emilien"} 0
  wdl_analysis_warnings_total{peer="Jules"} 0
  wdl_builtin_dropped_total{peer="Emilien"} 0
  wdl_builtin_dropped_total{peer="Jules"} 0
  wdl_builtin_entries{peer="Emilien"} 0
  wdl_builtin_entries{peer="Jules"} 0
  wdl_builtin_expired_total{peer="Emilien"} 0
  wdl_builtin_expired_total{peer="Jules"} 0
  wdl_builtin_memory_bytes{peer="Emilien"} 0
  wdl_builtin_memory_bytes{peer="Jules"} 0
  wdl_builtin_ticks_total{peer="Emilien"} 0
  wdl_builtin_ticks_total{peer="Jules"} 0
  wdl_builtin_writes_total{peer="Emilien"} 0
  wdl_builtin_writes_total{peer="Jules"} 0
  wdl_eval_delta_size{peer="Emilien"} count=0
  wdl_eval_delta_size{peer="Jules"} count=0
  wdl_eval_delta_stages_total{peer="Emilien"} 0
  wdl_eval_delta_stages_total{peer="Jules"} 1
  wdl_eval_iterations{peer="Emilien"} count=2
  wdl_eval_iterations{peer="Jules"} count=2
  wdl_eval_plans_skipped_total{peer="Emilien"} 0
  wdl_eval_plans_skipped_total{peer="Jules"} 2
  wdl_eval_program_cache_hits_total{peer="Emilien"} 0
  wdl_eval_program_cache_hits_total{peer="Jules"} 0
  wdl_eval_replans_total{peer="Emilien"} 0
  wdl_eval_replans_total{peer="Jules"} 1
  wdl_eval_stage_duration_microseconds{peer="Emilien"} count=2
  wdl_eval_stage_duration_microseconds{peer="Jules"} count=2
  wdl_eval_stage_fastpath_total{peer="Emilien"} 0
  wdl_eval_stage_fastpath_total{peer="Jules"} 0
  wdl_net_acked_total{transport="inmem"} 0
  wdl_net_batch_size{transport="inmem"} count=0
  wdl_net_batches_total{transport="inmem"} 0
  wdl_net_bytes_total{transport="inmem"} 194
  wdl_net_delivered_total{transport="inmem"} 2
  wdl_net_dup_dropped_total{transport="inmem"} 0
  wdl_net_pending{transport="inmem"} 0
  wdl_net_reorder_dropped_total{transport="inmem"} 0
  wdl_net_retransmits_total{transport="inmem"} 0
  wdl_net_send_failures_total{transport="inmem"} 0
  wdl_net_sent_total{transport="inmem"} 2
  wdl_net_window_stalls_total{transport="inmem"} 0
  wdl_peer_delegations_installed_total{peer="Emilien"} 1
  wdl_peer_delegations_installed_total{peer="Jules"} 0
  wdl_peer_delegations_rejected_total{peer="Emilien"} 0
  wdl_peer_delegations_rejected_total{peer="Jules"} 0
  wdl_peer_delegations_retracted_total{peer="Emilien"} 0
  wdl_peer_delegations_retracted_total{peer="Jules"} 0
  wdl_peer_derivations_total{peer="Emilien"} 1
  wdl_peer_derivations_total{peer="Jules"} 0
  wdl_peer_iterations_total{peer="Emilien"} 2
  wdl_peer_iterations_total{peer="Jules"} 2
  wdl_peer_messages_received_total{peer="Emilien"} 1
  wdl_peer_messages_received_total{peer="Jules"} 1
  wdl_peer_messages_sent_total{peer="Emilien"} 1
  wdl_peer_messages_sent_total{peer="Jules"} 1
  wdl_peer_runtime_errors_total{peer="Emilien"} 0
  wdl_peer_runtime_errors_total{peer="Jules"} 0
  wdl_peer_stages_total{peer="Emilien"} 2
  wdl_peer_stages_total{peer="Jules"} 2
  wdl_peer_trace_events_total{peer="Emilien"} 8
  wdl_peer_trace_events_total{peer="Jules"} 8
  wdl_store_interned_values{peer="Emilien"} 4
  wdl_store_interned_values{peer="Jules"} 4
  wdl_store_memory_bytes{peer="Emilien"} 3228
  wdl_store_memory_bytes{peer="Jules"} 3772
  wdl_sys_dead_letter_queue 0
  wdl_sys_dead_letters_dropped_total 0
  wdl_sys_dead_letters_total 0
  wdl_sys_evictions_total 0
  wdl_sys_inbox_depth{peer="Emilien"} 0
  wdl_sys_inbox_depth{peer="Jules"} 0
  wdl_sys_inbox_shed_total{peer="Emilien"} 0
  wdl_sys_inbox_shed_total{peer="Jules"} 0
  wdl_sys_member_transitions_total 0
  wdl_sys_members{status="alive"} 2
  wdl_sys_members{status="dead"} 0
  wdl_sys_members{status="suspect"} 0
  wdl_system_messages_dropped_total 0
  wdl_system_peers 2
  wdl_system_round_duration_microseconds count=3
  wdl_system_rounds_total 3
  wdl_system_transport_errors_total 0

The bench suite emits a machine-readable snapshot sourced from the
same registry — wall times vary, so only the shape is checked:

  $ wdl-bench obs > /dev/null
  $ grep -c '"name"' BENCH_obs.json
  3
  $ grep -o '"bench": "obs"' BENCH_obs.json
  "bench": "obs"
  $ grep -o '"retransmits"' BENCH_obs.json | sort -u
  "retransmits"

The incremental evaluation engine (compiled-program cache, activation
scheduling, quiescence fast path) must be observationally identical to
per-stage recompilation, including across mid-run cache invalidations;
the smoke also writes the perf-trajectory file, whose shape is checked
(wall times vary):

  $ wdl-bench eval-smoke
  EVAL-SMOKE incremental-engine equivalence (deterministic)
  tc: engines byte-identical after settle        ok
  tc: quiescent stages emit nothing              ok
  tc: trickle updates stay identical             ok
  tc: mid-run rule addition stays identical      ok
  tc: mid-run delegation install stays identical ok
  album: engines byte-identical after settle     ok
  album: trickle updates stay identical          ok
  storage: columnar equals boxed baseline        ok
  perf: burst/trickle speedups stay above 1.0    ok
  EVAL-SMOKE passed
  
  done.
  $ grep -c '"name"' BENCH_eval.json
  12
  $ grep -o '"bench": "eval"' BENCH_eval.json
  "bench": "eval"
  $ grep -o '"speedup"' BENCH_eval.json | sort -u
  "speedup"

Batched-transport equivalence smoke: a batching system and the
per-message ablation must expose identical peer states after every
round, on every transport — batching may change wire units only, never
the delivery schedule. Also emits the net bench's JSON (reduced sizes).

  $ wdl-bench net-smoke
  NET-SMOKE batched-transport equivalence (deterministic)
  inmem: every per-round state identical         ok
  inmem: batched run coalesced, ablation did not ok
  simnet: every per-round state identical        ok
  simnet: batched run coalesced, ablation did not ok
  tcp+wire: every per-round state identical      ok
  tcp+wire: batched run coalesced, ablation did not ok
  NET-SMOKE passed
  
  done.
  $ grep -c '"name"' BENCH_net.json
  6
  $ grep -o '"bench": "net"' BENCH_net.json
  "bench": "net"
  $ grep -o '"per_message_ms"' BENCH_net.json | sort -u
  "per_message_ms"
  $ grep -o '"speedup"' BENCH_net.json | sort -u
  "speedup"
