`wdl flow` prints the knowledge-flow graph of one or more programs
checked as a single system: which peers may learn facts derived from
each relation, and the rule chain that carries them.

The Wepic album rule delegates into whichever peer is selected, so
the selection relation's bindings escape to an unbounded set:

  $ wdl flow jules.wdl
  attendeePictures@Jules: stays at Jules
  selectedAttendee@Jules: reaches <any> (delegation-bound peers)
    -> attendeePictures@Jules  [Jules#1]
    ~> bindings ship to <any> peer  [Jules#1]
  
  rules:
    Jules#1: attendeePictures@Jules($id, $name, $owner, $data) :- selectedAttendee@Jules($attendee), pictures@$attendee($id, $name, $owner, $data)
  

The trending trio as a system: alice's and bob's posts reach the hub
through the pull rule and its delegations:

  $ wdl flow trending.wdl trending_alice.wdl trending_bob.wdl
  hot@trends: stays at trends
    -> top@trends  [trends#4]
  posts@trends: stays at trends
    -> recent@trends  [trends#2]
    -> trending@trends  [trends#2 -> trends#3]
  recent@trends: stays at trends
    -> trending@trends  [trends#3]
  source@trends: reaches <any> (delegation-bound peers)
    -> posts@trends  [trends#1]
    -> recent@trends  [trends#1 -> trends#2]
    -> trending@trends  [trends#1 -> trends#2 -> trends#3]
    ~> bindings ship to <any> peer  [trends#1]
  top@trends: stays at trends
  trending@trends: stays at trends
  
  rules:
    trends#1: posts@trends($id, $k) :- source@trends($w), posts@$w($id, $k)
    trends#2: recent@trends($id, $k) :- posts@trends($id, $k)
    trends#3: trending@trends($k, count($id)) :- recent@trends($id, $k)
    trends#4: top@trends($k, $n) :- hot@trends($k, $n)
  

Graphviz output renders nodes as relation@peer boxes, the abstract
any-peer as a doubleoctagon, and delegation hops as dashed edges:

  $ wdl flow --format dot jules.wdl
  digraph flow {
    rankdir=LR;
    "selectedAttendee@Jules" [shape=box];
    "attendeePictures@Jules" [shape=box];
    "pictures@<any>" [shape=doubleoctagon];
    "selectedAttendee@Jules" -> "attendeePictures@Jules" [label="Jules#1"];
    "peer:<any>" [shape=ellipse,style=dotted];
    "selectedAttendee@Jules" -> "peer:<any>" [label="Jules#1",style=dashed];
    "pictures@<any>" -> "attendeePictures@Jules" [label="Jules#1"];
  }
  

JSON output for tooling mirrors the text report:

  $ wdl flow --format json jules.wdl | head -8
  {
    "relations": [{"relation":"attendeePictures","peer":"Jules","reachable_peers":[],"any":false,"witnesses":[]},{"relation":"selectedAttendee","peer":"Jules","reachable_peers":["Jules"],"any":true,"witnesses":[{"node":{"rel":"attendeePictures","peer":"Jules"},"rules":["Jules#1"]}]}],
    "edges": [{"src":{"rel":"selectedAttendee","peer":"Jules"},"dst":{"rel":"attendeePictures","peer":"Jules"},"via":["<any>"],"rule":"Jules#1"},{"src":{"rel":"pictures","peer":"<any>"},"dst":{"rel":"attendeePictures","peer":"Jules"},"via":[],"rule":"Jules#1"}],
    "rules": [{"id":"Jules#1","peer":"Jules","rule":"attendeePictures@Jules($id, $name, $owner, $data) :- selectedAttendee@Jules($attendee), pictures@$attendee($id, $name, $owner, $data)"}]
  }

A parse error in any file of the set aborts the analysis:

  $ echo 'v@p($x :- a@p($x);' > bad.wdl
  $ wdl flow bad.wdl
  bad.wdl:1:8: error[WDL000]: expected ')' but found :-
  [2]
