Parallel fixpoint smoke: the sharded semi-naive engine at 2/4/8
domains must produce end states byte-identical to the sequential
ablation on both canonical scenarios, and domains:1 must take the
literally untouched sequential code path. The wall-clock numbers in
the JSON are whatever this host produced (on a single hardware
thread the curve is flat by construction); the checks are exact.

  $ wdl-bench par-smoke
  PAR-SMOKE parallel fixpoint equivalence (deterministic)
  tc_chain64: 2-domain end state byte-identical  ok
  tc_chain64: 4-domain end state byte-identical  ok
  tc_chain64: 8-domain end state byte-identical  ok
  tc_chain64: domains:1 takes the sequential path ok
  album: 2-domain end state byte-identical       ok
  album: 4-domain end state byte-identical       ok
  album: 8-domain end state byte-identical       ok
  album: domains:1 takes the sequential path     ok
  wrote BENCH_par.json
  PAR-SMOKE passed
  
  done.


The machine-readable record ships alongside the check lines.

  $ grep -o '"bench": "par"' BENCH_par.json
  "bench": "par"
  $ grep -c '"end_state_identical": true' BENCH_par.json
  8
  $ grep -o '"domains": 8' BENCH_par.json | sort -u
  "domains": 8
