Streaming smoke: a 100k-delivery feed replay (half re-deliveries)
through the two wrapper dedup strategies — exact seen-set vs. a Bloom
filter sized for the stream — then a reduced replay through a peer
whose sliding-window builtin feeds a top-k module. The top-k output
must equal an exact recompute over the final window, and the measured
false-positive rate must stay under the configured bound.

  $ wdl-bench stream-smoke
  STREAM-SMOKE feed replay through builtin modules (deterministic)
  exact dedup counts every distinct delivery once ok
  bloom never misses a duplicate                 ok
  bloom false-positive rate under 3x the bound   ok
  bloom memory at least 8x under exact           ok
  windowed top-k matches exact recompute of the window ok
  window holds exactly the trailing stages       ok
  top-k queue bounded by the window              ok
  wrote BENCH_stream.json
  STREAM-SMOKE passed
  
  done.



The machine-readable record ships alongside the check lines.

  $ grep -o '"bench": "stream"' BENCH_stream.json
  "bench": "stream"
  $ grep -o '"stream": 100000' BENCH_stream.json
  "stream": 100000
  $ grep -o '"configured_fpr": 0.01' BENCH_stream.json
  "configured_fpr": 0.01
  $ grep -o '"matched": true' BENCH_stream.json
  "matched": true
  $ grep -o '"window_matched": true' BENCH_stream.json
  "window_matched": true
