ext edge@local(src, dst);
int tc@local(x, y);
edge@local(1, 2);
edge@local(2, 3);
edge@local(3, 4);
tc@local($x, $y) :- edge@local($x, $y);
tc@local($x, $z) :- tc@local($x, $y), edge@local($y, $z);
