The trending example exercises the builtin relation modules end to
end: a window builtin mirrors the posts the hub pulls from its source
peers, an aggregate view counts topics over just that window, and a
top-k builtin ranks the hub's own lookup activity.

The program lints clean — the only report is the info-level
delegation boundary on the pull rule:

  $ wdl check trending.wdl trending_alice.wdl trending_bob.wdl
  trending.wdl:23:45: info[WDL030]: delegation boundary at body literal 2: evaluation suspends here and ships the residual rule to the peer bound to $w, carrying bindings of $w

Writing a rule head into the read-only time builtin is an error, and
a builtin that is written but never read is flagged as waste:

  $ cat > bad_builtin.wdl <<'EOF'
  > builtin time clock@local(stage, at);
  > builtin window w@local(x) with size=4;
  > int out@local(s);
  > ext src@local(x);
  > clock@local($s, $s) :- src@local($s);
  > out@local($s) :- clock@local($s, $t);
  > w@local($x) :- src@local($x);
  > EOF
  $ wdl check bad_builtin.wdl
  bad_builtin.wdl:2:1: warning[WDL052]: builtin window relation w@local is written but never read by any rule; the runtime maintains its materialization for nothing
  bad_builtin.wdl:5:1: error[WDL050]: rule head writes clock@local, a read-only builtin time relation that only the runtime writes
    note: bad_builtin.wdl:1:1: declared as a builtin here
  [2]

Three peers to quiescence: the hub's trending view counts per topic
over the sliding window, and the top-k module materializes the two
heaviest lookup topics:

  $ wdl simulate trends=trending.wdl alice=trending_alice.wdl bob=trending_bob.wdl
  quiescent after 4 round(s), 4 message(s)
  
  === peer trends ===
  hot@trends (2):
    hot@trends("cats", 2)
    hot@trends("databases", 1)
  posts@trends (5):
    posts@trends(1, "cats")
    posts@trends(2, "cats")
    posts@trends(3, "databases")
    posts@trends(4, "cats")
    posts@trends(5, "ocaml")
  recent@trends (5):
    recent@trends(1, "cats")
    recent@trends(2, "cats")
    recent@trends(3, "databases")
    recent@trends(4, "cats")
    recent@trends(5, "ocaml")
  source@trends (2):
    source@trends("alice")
    source@trends("bob")
  top@trends (2):
    top@trends("cats", 2)
    top@trends("databases", 1)
  trending@trends (3):
    trending@trends("cats", 3)
    trending@trends("databases", 1)
    trending@trends("ocaml", 1)
  stats: stages=3 iterations=6 derivations=19 sent=2 received=2 installed=0 retracted=0 rejected=0 errors=0
  
  === peer alice ===
  posts@alice (3):
    posts@alice(1, "cats")
    posts@alice(2, "cats")
    posts@alice(3, "databases")
  delegated rules:
    from trends: posts@trends($id, $k) :- posts@alice($id, $k)
  stats: stages=2 iterations=2 derivations=3 sent=1 received=1 installed=1 retracted=0 rejected=0 errors=0
  
  === peer bob ===
  posts@bob (2):
    posts@bob(4, "cats")
    posts@bob(5, "ocaml")
  delegated rules:
    from trends: posts@trends($id, $k) :- posts@bob($id, $k)
  stats: stages=2 iterations=2 derivations=2 sent=1 received=1 installed=1 retracted=0 rejected=0 errors=0
  
Checked as one system, the flow analysis sees that alice's and bob's
posts travel through the hub's pull rule into its window and views —
an intentional share here, but exactly the chain WDL060 surfaces:

  $ wdl check --system trending.wdl trending_alice.wdl trending_bob.wdl
  trending.wdl:23:45: info[WDL030]: delegation boundary at body literal 2: evaluation suspends here and ships the residual rule to the peer bound to $w, carrying bindings of $w
  trending_alice.wdl:2:1: warning[WDL060]: facts derived from posts@alice can reach peer trends through a chain of rules; nothing in this program marks posts@alice as shared
    note: reaches peer trends via rule chain trends#1 -> trends#2
    note: reaches peer trends via rule chain trends#1 -> trends#2 -> trends#3
  trending_bob.wdl:2:1: warning[WDL060]: facts derived from posts@bob can reach peer trends through a chain of rules; nothing in this program marks posts@bob as shared
    note: reaches peer trends via rule chain trends#1 -> trends#2
    note: reaches peer trends via rule chain trends#1 -> trends#2 -> trends#3
  [1]
