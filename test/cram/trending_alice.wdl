// Alice's peer: her posts, pulled by the trends hub (trending.wdl).
ext posts@alice(id, topic);
posts@alice(1, "cats");
posts@alice(2, "cats");
posts@alice(3, "databases");
