// Bob's peer: his posts, pulled by the trends hub (trending.wdl).
ext posts@bob(id, topic);
posts@bob(4, "cats");
posts@bob(5, "ocaml");
