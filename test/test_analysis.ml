(* The static analyzer: golden-output tests for every diagnostic code,
   plus properties tying it to the loader (accepted programs carry no
   error diagnostics) and to the evaluator's delegation boundary. *)
open Wdl_syntax
open Wdl_analysis

let tc name f = Alcotest.test_case name `Quick f

let run ?peer_mode ?pedantic ?self src =
  match Parser.program_located ~file:"t.wdl" src with
  | Error err -> [ Analysis.of_parse_error ~file:"t.wdl" err ]
  | Ok p -> Analysis.check_located ?peer_mode ?pedantic ?self p

let codes ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

let golden name ?peer_mode ?pedantic ?self src expected =
  tc name (fun () ->
      Alcotest.(check string)
        name expected
        (Diagnostic.render_text (run ?peer_mode ?pedantic ?self src)))

let fires name ?peer_mode ?pedantic ?self src code =
  tc name (fun () ->
      let cs = codes (run ?peer_mode ?pedantic ?self src) in
      if not (List.mem code cs) then
        Alcotest.failf "expected %s among [%s]" code (String.concat "; " cs))

(* ---------------- golden output, one per code ---------------- *)

let golden_suite =
  [
    golden "WDL000 parse error" "v@p($x :- ;"
      "t.wdl:1:8: error[WDL000]: expected ')' but found :-";
    golden "WDL001 unbound head var" "v@p($x) :- a@p($y);"
      "t.wdl:1:1: warning[WDL020]: relation v@p is never declared; it will \
       be auto-created as extensional on first insertion\n\
       t.wdl:1:1: error[WDL001]: head variable $x is not bound by the body\n\
       t.wdl:1:12: warning[WDL020]: relation a@p is never declared; it will \
       be auto-created as extensional on first insertion\n\
       t.wdl:1:12: warning[WDL022]: rule can never fire: a@p is never \
       declared, asserted or derived, so this atom matches nothing";
    golden "WDL002 unbound relation var"
      "ext a@p(x);\nint v@p(x);\na@p(1);\nv@p($y) :- $r@p($y);"
      "t.wdl:4:1: error[WDL002]: relation/peer variable $r in $r@p($y) is \
       not bound by the preceding literals";
    golden "WDL003 unbound var in negation"
      "ext a@p(x);\nint v@p(x);\na@p(1);\nv@p($x) :- a@p($x), not a@p($y);"
      "t.wdl:4:1: error[WDL003]: variable $y in negated atom a@p($y) is not \
       bound by the preceding literals";
    golden "WDL004 unbound var in builtin"
      "ext a@p(x);\nint v@p(x);\na@p(1);\nv@p($x) :- a@p($x), $y < 3;"
      "t.wdl:4:1: error[WDL004]: variable $y in builtin $y < 3 is not bound \
       by the preceding literals";
    golden "WDL005 rebound assignment"
      "ext a@p(x);\nint v@p(x);\na@p(1);\nv@p($x) :- a@p($x), $x := 1 + 1;"
      "t.wdl:4:1: error[WDL005]: assignment $x := 1 + 1 rebinds \
       already-bound variable $x";
    (* Only reachable from constructed rules (wire/delegation): the
       parser never produces non-string name constants. *)
    tc "WDL006 invalid name constant" (fun () ->
        let bad =
          Atom.make
            ~rel:(Term.Const (Value.Int 3))
            ~peer:(Term.Const (Value.String "p"))
            [ Term.Var "x" ]
        in
        let r =
          Rule.make ~head:(Atom.app "v" "p" [ Term.Var "x" ])
            ~body:[ Literal.Pos bad ]
        in
        let ds =
          Analysis.check_plain ~self:"p" [ Program.Rule r ]
          |> List.filter (fun (d : Diagnostic.t) -> d.code = "WDL006")
        in
        Alcotest.(check string)
          "WDL006"
          "error[WDL006]: constant 3 cannot be a relation or peer name (in \
           3@p($x))"
          (Diagnostic.render_text ds));
    golden "WDL007 statement targets another peer" ~peer_mode:true ~self:"p"
      "ext q@other(a);"
      "t.wdl:1:1: error[WDL007]: declaration of q@other targets peer other; a \
       program loaded at p may only declare relations at p";
    golden "WDL008 kind conflict" "ext r@p(a);\nint r@p(a);\nr@p(1);"
      "t.wdl:2:1: error[WDL008]: relation r@p redeclared as int (it is ext)\n\
      \  note: t.wdl:1:1: first declared here";
    golden "WDL009 fact into intensional" "int v@p(a);\nv@p(1);"
      "t.wdl:2:1: error[WDL009]: fact asserts into the intensional relation \
       v@p (a view recomputed from its rules)\n\
      \  note: t.wdl:1:1: declared intensional here";
    golden "WDL010 negative cycle"
      "int win@p(x);\n\
       ext move@p(x, y);\n\
       move@p(1, 2);\n\
       win@p($x) :- move@p($x, $y), not win@p($y);"
      "t.wdl:4:1: error[WDL010]: rules do not stratify: negation cycle \
       through relation(s) win\n\
      \  note: t.wdl:4:1: this rule derives win and reads not win";
    golden "WDL011 arity conflict" "ext r@p(a, b);\nr@p(1);"
      "t.wdl:2:1: error[WDL011]: fact has arity 1, but r@p is declared with \
       arity 2\n\
      \  note: t.wdl:1:1: declared here";
    golden "WDL012 rule atom arity mismatch"
      "ext r@p(a, b);\nint v@p(x);\nr@p(1, 2);\nv@p($x) :- r@p($x);"
      "t.wdl:4:12: warning[WDL012]: atom r@p is used with arity 1, but the \
       relation has arity 2; this atom can never match\n\
      \  note: t.wdl:1:1: declared here";
    golden "WDL013 non-local aggregate"
      "int v@p(n);\nv@p(count($x)) :- a@q($x);"
      "t.wdl:2:1: error[WDL013]: aggregate rules must be entirely local: \
       every body atom's peer must name p\n\
       t.wdl:2:19: info[WDL030]: delegation boundary at body literal 1: \
       evaluation suspends here and ships the residual rule to peer q, \
       carrying bindings of nothing";
    golden "WDL020 undeclared relation"
      "int v@p(x);\next s@p(a);\ns@p(1);\nv@p($x) :- s@p($x), a@p($x);"
      "t.wdl:4:21: warning[WDL020]: relation a@p is never declared; it will \
       be auto-created as extensional on first insertion\n\
       t.wdl:4:21: warning[WDL022]: rule can never fire: a@p is never \
       declared, asserted or derived, so this atom matches nothing";
    golden "WDL021 unused relation" "ext r@p(a);\next s@p(a);\ns@p(1);"
      "t.wdl:1:1: warning[WDL021]: relation r@p is declared but never used by \
       any fact or rule";
    golden "WDL030 boundary report (escape suppressed by ext binder)"
      "ext sel@p(a);\n\
       ext pics@p(i);\n\
       int v@p(i);\n\
       sel@p(\"q\");\n\
       pics@p(1);\n\
       v@p($i) :- sel@p($a), pics@$a($i);"
      "t.wdl:6:23: info[WDL030]: delegation boundary at body literal 2: \
       evaluation suspends here and ships the residual rule to the peer \
       bound to $a, carrying bindings of $a";
    (* The planner reorders bodies itself, so the note is opt-in. *)
    golden "WDL031 silent by default"
      "ext t@p(y);\n\
       int v@p(x, y);\n\
       t@p(7);\n\
       v@p($x, $y) :- data@q($x), t@p($y);"
      "t.wdl:4:16: info[WDL030]: delegation boundary at body literal 1: \
       evaluation suspends here and ships the residual rule to peer q, \
       carrying bindings of nothing";
    golden "WDL031 pedantic reorder note" ~pedantic:true
      "ext t@p(y);\n\
       int v@p(x, y);\n\
       t@p(7);\n\
       v@p($x, $y) :- data@q($x), t@p($y);"
      "t.wdl:4:16: info[WDL030]: delegation boundary at body literal 1: \
       evaluation suspends here and ships the residual rule to peer q, \
       carrying bindings of nothing\n\
       t.wdl:4:16: info[WDL031]: body order as written ships 1 literal(s) \
       that p can evaluate locally; the compiler plans this body as \
       `t@p($y), data@q($x)`\n\
      \  note: shipped bindings: nothing as written, $y as evaluated\n\
      \  note: in the planned order the residual mentions only q, so it \
       evaluates there without further delegation";
    golden "WDL032 open-ended peer variable"
      "int book@p(a);\n\
       int v@p(x);\n\
       ext s@p(a);\n\
       s@p(1);\n\
       book@p($a) :- s@p($a);\n\
       v@p($x) :- book@p($a), data@$a($x);"
      "t.wdl:3:1: warning[WDL060]: facts derived from s@p can reach an \
       unbounded set of peers through a chain of rules; nothing in this \
       program marks s@p as shared\n\
      \  note: reaches an unbounded set of peers via rule chain p#1 -> p#2\n\
       t.wdl:6:24: info[WDL030]: delegation boundary at body literal 2: \
       evaluation suspends here and ships the residual rule to the peer \
       bound to $a, carrying bindings of $a\n\
       t.wdl:6:24: warning[WDL032]: delegation target $a is open-ended: it \
       is bound by the derived view book@p; any peer it names receives the \
       residual rule and the bindings it carries\n\
      \  note: t.wdl:6:12: the peer variable is bound here";
    golden "WDL040 duplicate rule"
      "ext a@p(x);\nint v@p(x);\na@p(1);\n\
       v@p($x) :- a@p($x);\nv@p($y) :- a@p($y);"
      "t.wdl:5:1: warning[WDL040]: duplicate rule: identical to an earlier \
       rule up to variable renaming\n\
      \  note: t.wdl:4:1: the earlier rule is here";
    golden "WDL041 subsumed rule"
      "ext a@p(x);\next b@p(x);\nint v@p(x);\na@p(1);\nb@p(1);\n\
       v@p($x) :- a@p($x);\nv@p($x) :- a@p($x), b@p($x);"
      "t.wdl:7:1: warning[WDL041]: redundant rule: an earlier, more general \
       rule already derives everything this rule derives\n\
      \  note: t.wdl:6:1: the earlier rule is here";
    golden "WDL050 rule head writes read-only builtin"
      "builtin time clock@p(stage, now);\n\
       ext log@p(s, n);\n\
       int snap@p(s, n);\n\
       log@p(1, 2);\n\
       snap@p($s, $n) :- clock@p($s, $n);\n\
       clock@p($s, $n) :- log@p($s, $n);"
      "t.wdl:6:1: error[WDL050]: rule head writes clock@p, a read-only \
       builtin time relation that only the runtime writes\n\
      \  note: t.wdl:1:1: declared as a builtin here";
    golden "WDL050 fact into read-only builtin"
      "builtin time clock@p(stage, now);\n\
       int snap@p(s, n);\n\
       snap@p($s, $n) :- clock@p($s, $n);\n\
       clock@p(1, 2.0);"
      "t.wdl:4:1: error[WDL050]: fact asserts into clock@p, a read-only \
       builtin time relation that only the runtime writes";
    golden "WDL051 self-feeding builtin"
      "builtin window recent@p(item) with size=2;\n\
       ext feed@p(item);\n\
       feed@p(\"a\");\n\
       recent@p($x) :- feed@p($x);\n\
       recent@p($x) :- recent@p($x);"
      "t.wdl:5:1: error[WDL051]: rule reads builtin relation recent@p in its \
       body and writes it in its head; a builtin relation is not a plain \
       set, so this feedback loop never stabilizes\n\
      \  note: t.wdl:1:1: declared as a builtin here";
    golden "WDL052 builtin written but never read"
      "builtin window recent@p(item) with size=2;\n\
       ext feed@p(item);\n\
       feed@p(\"a\");\n\
       recent@p($x) :- feed@p($x);"
      "t.wdl:1:1: warning[WDL052]: builtin window relation recent@p is \
       written but never read by any rule; the runtime maintains its \
       materialization for nothing";
    golden "WDL053 invalid builtin configuration"
      "builtin window recent@p(item);\n\
       int v@p(item);\n\
       v@p($x) :- recent@p($x);"
      "t.wdl:1:1: error[WDL053]: builtin window: one of size=N or seconds=T \
       is required";
    fires "WDL053 unknown builtin kind"
      "builtin ring r@p(a);\nint v@p(a);\nv@p($x) :- r@p($x);" "WDL053";
    fires "WDL053 conflicting builtin redeclaration"
      "builtin window r@p(a) with size=2;\n\
       builtin window r@p(a) with size=3;\n\
       int v@p(a);\nv@p($x) :- r@p($x);"
      "WDL053";
    fires "WDL053 builtin form dropped on redeclaration"
      "builtin window r@p(a) with size=2;\n\
       ext r@p(a);\nint v@p(a);\nv@p($x) :- r@p($x);"
      "WDL053";
    golden "clean program is silent"
      "ext e@p(x, y);\nint t@p(x, y);\ne@p(1, 2);\n\
       t@p($x, $y) :- e@p($x, $y);\n\
       t@p($x, $z) :- t@p($x, $y), e@p($y, $z);"
      "";
    golden "WDL054 rule feeds a weight-accumulating builtin"
      "builtin topk trending@p(item, n) with k=2, size=3;\n\
       ext feed@p(item);\n\
       feed@p(\"a\");\n\
       trending@p($x, 1) :- feed@p($x);\n\
       int v@p(item, n);\n\
       v@p($x, $n) :- trending@p($x, $n);"
      "t.wdl:4:1: warning[WDL054]: rule head derives into trending@p, a \
       weight-accumulating builtin topk relation; derivations pass through \
       set deduplication, so the same tuple derived many times contributes \
       its weight only once — assert weighted observations as facts or \
       messages instead\n\
      \  note: t.wdl:1:1: declared as a builtin here";
    golden "clean builtin program is silent"
      "builtin window recent@p(item) with size=3;\n\
       builtin topk trending@p(item, n) with k=2, size=3;\n\
       ext feed@p(item);\n\
       int v@p(item);\n\
       feed@p(\"a\");\n\
       trending@p(\"a\", 1);\n\
       recent@p($x) :- feed@p($x);\n\
       v@p($x) :- recent@p($x);\n\
       v@p($x) :- trending@p($x, $n);"
      "";
  ]

(* ---------------- targeted unit tests ---------------- *)

let unit_suite =
  [
    tc "every code in the catalogue is distinct and well-formed" (fun () ->
        let names = List.map (fun (c, _, _) -> c) Analysis.codes in
        Alcotest.(check int)
          "unique" (List.length names)
          (List.length (List.sort_uniq String.compare names));
        List.iter
          (fun c ->
            if
              String.length c <> 6
              || not (String.sub c 0 3 = "WDL")
            then Alcotest.failf "malformed code %s" c)
          names);
    tc "exit codes follow worst severity" (fun () ->
        let e = Diagnostic.error "WDL008" "x" in
        let w = Diagnostic.warning "WDL020" "x" in
        let i = Diagnostic.info "WDL030" "x" in
        Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
        Alcotest.(check int) "info" 0 (Diagnostic.exit_code [ i ]);
        Alcotest.(check int) "warn" 1 (Diagnostic.exit_code [ i; w ]);
        Alcotest.(check int) "error" 2 (Diagnostic.exit_code [ w; e ]));
    tc "late intensional declaration cannot break stratification" (fun () ->
        let peer = Webdamlog.Peer.create "p" in
        (match
           Webdamlog.Peer.load_string peer
             "win@p($x) :- move@p($x, $y), not win@p($y);"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rule should load while win is ext: %s" e);
        match Webdamlog.Peer.load_string peer "int win@p(x);" with
        | Ok () ->
          Alcotest.fail "declaring win intensional must be rejected"
        | Error _ -> ());
    tc "accepted rules surface warnings in trace and counter" (fun () ->
        let peer = Webdamlog.Peer.create "p" in
        (match
           Webdamlog.Peer.load_string peer
             "ext s@p(a);\nint book@p(a);\nint v@p(x);\ns@p(1);\n\
              book@p($a) :- s@p($a);\n\
              v@p($x) :- book@p($a), data@$a($x);"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "load: %s" e);
        let warned =
          Webdamlog.Trace.find
            (Webdamlog.Peer.trace peer)
            (function
              | Webdamlog.Trace.Analysis_warning { code; _ } ->
                code = "WDL032"
              | _ -> false)
        in
        Alcotest.(check bool) "WDL032 in trace" true (warned <> None));
    tc "duplicate rule install warns via added_rule_warnings" (fun () ->
        let peer = Webdamlog.Peer.create "p" in
        (match
           Webdamlog.Peer.load_string peer
             "ext a@p(x);\nint v@p(x);\nv@p($x) :- a@p($x);\n\
              v@p($y) :- a@p($y);"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "load: %s" e);
        let warned =
          Webdamlog.Trace.find
            (Webdamlog.Peer.trace peer)
            (function
              | Webdamlog.Trace.Analysis_warning { code; _ } ->
                code = "WDL040"
              | _ -> false)
        in
        Alcotest.(check bool) "WDL040 in trace" true (warned <> None));
    tc "reordered rule computes the same answers" (fun () ->
        let parse_rule s =
          match Parser.rule s with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        let original =
          parse_rule "out@a($x, $y) :- data@b($x), t@a($y), u@a($x, $y);"
        in
        let improved =
          match Boundary.improve ~self:"a" original with
          | Some i -> i.Boundary.reordered
          | None -> Alcotest.fail "expected an improvement"
        in
        let final rule =
          let sys = Webdamlog.System.create () in
          let a = Webdamlog.System.add_peer sys "a" in
          let b = Webdamlog.System.add_peer sys "b" in
          (match
             Webdamlog.Peer.load_string a
               "ext t@a(y);\next u@a(x, y);\nint out@a(x, y);\n\
                t@a(1); t@a(2);\nu@a(10, 1); u@a(20, 2);"
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load a: %s" e);
          (match
             Webdamlog.Peer.load_string b
               "ext data@b(x);\ndata@b(10); data@b(20); data@b(30);"
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load b: %s" e);
          (match Webdamlog.Peer.add_rule a rule with
          | Ok () -> ()
          | Error e -> Alcotest.failf "add_rule: %s" e);
          (match Webdamlog.System.run sys with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "run: %s" e);
          List.sort Fact.compare (Webdamlog.Peer.query a "out")
        in
        let fo = final original and fi = final improved in
        Alcotest.(check int) "same count" (List.length fo) (List.length fi);
        Alcotest.(check bool)
          "same facts" true
          (List.for_all2 Fact.equal fo fi);
        Alcotest.(check bool) "nonempty" true (fo <> []));
  ]

(* ---------------- properties ---------------- *)

let ident_gen =
  QCheck.Gen.(
    let* c = char_range 'a' 'e' in
    return (String.make 1 c))

let var_gen = QCheck.Gen.oneofl [ "x"; "y"; "z" ]

let peer_gen =
  QCheck.Gen.(frequency [ (4, return "p"); (1, return "q") ])

let term_gen =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun n -> Term.Const (Value.Int n)) (int_range 0 5));
        (3, map (fun x -> Term.Var x) var_gen);
      ])

let atom_gen =
  QCheck.Gen.(
    let* rel = ident_gen in
    let* peer = peer_gen in
    let* args = list_size (int_range 1 3) term_gen in
    return (Atom.app rel peer args))

let peer_var_atom_gen =
  QCheck.Gen.(
    let* rel = ident_gen in
    let* pv = var_gen in
    let* args = list_size (int_range 1 2) term_gen in
    return (Atom.make ~rel:(Term.Const (Value.String rel)) ~peer:(Term.Var pv) args))

let literal_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun a -> Literal.Pos a) atom_gen);
        (1, map (fun a -> Literal.Pos a) peer_var_atom_gen);
        (2, map (fun a -> Literal.Neg a) atom_gen);
        ( 1,
          let* x = var_gen in
          let* y = var_gen in
          return (Literal.Cmp (Literal.Lt, Expr.Var x, Expr.Var y)) );
        ( 1,
          let* x = var_gen in
          let* n = int_range 0 5 in
          return
            (Literal.Assign (x, Expr.Add (Expr.Const (Value.Int n), Expr.Const (Value.Int 1)))) );
      ])

let rule_gen =
  QCheck.Gen.(
    let* head = atom_gen in
    let* body = list_size (int_range 1 4) literal_gen in
    return (Rule.make ~head ~body))

let rule_arb = QCheck.make ~print:(Format.asprintf "%a" Rule.pp) rule_gen

let stmt_gen =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          let* kind = oneofl [ Decl.Extensional; Decl.Intensional ] in
          let* rel = ident_gen in
          let* n = int_range 1 3 in
          return
            (Program.Decl
               (Decl.make ~kind ~rel ~peer:"p"
                  (List.init n (fun i -> Printf.sprintf "c%d" i)))) );
        ( 3,
          let* rel = ident_gen in
          let* args =
            list_size (int_range 1 3) (map (fun n -> Value.Int n) (int_range 0 5))
          in
          return (Program.Fact (Fact.make ~rel ~peer:"p" args)) );
        (4, map (fun r -> Program.Rule r) rule_gen);
      ])

let program_gen = QCheck.Gen.(list_size (int_range 1 6) stmt_gen)

let program_arb =
  QCheck.make ~print:(Format.asprintf "%a" Program.pp) program_gen

let props =
  [
    QCheck.Test.make ~count:300
      ~name:"loader-accepted programs carry no error diagnostics" program_arb
      (fun prog ->
        let peer = Webdamlog.Peer.create "p" in
        match Webdamlog.Peer.load_program peer prog with
        | Error _ -> true (* rejected: out of scope for this property *)
        | Ok () ->
          let errors =
            Analysis.check_plain ~peer_mode:true ~self:"p" prog
            |> List.filter (fun (d : Diagnostic.t) ->
                   d.severity = Diagnostic.Error)
          in
          if errors = [] then true
          else
            QCheck.Test.fail_reportf "loader accepted but analyzer errs:@ %s"
              (Diagnostic.render_text errors));
    QCheck.Test.make ~count:1000
      ~name:"boundary analysis agrees with rule classification" rule_arb
      (fun r ->
        let c =
          Webdamlog.Classify.classify ~self:"p"
            ~intensional:(fun _ -> false)
            r
        in
        match c.Webdamlog.Classify.body, Boundary.analyze ~self:"p" r with
        | Webdamlog.Classify.All_local, None -> true
        | Webdamlog.Classify.Delegates_at i,
          Some { Boundary.index; target = Boundary.Remote _; _ } ->
          i = index
        | Webdamlog.Classify.Dynamic_at i,
          Some { Boundary.index; target = Boundary.Dynamic _; _ } ->
          i = index
        | _ -> false);
    QCheck.Test.make ~count:1000
      ~name:"no boundary iff statically local" rule_arb (fun r ->
        Wdl_eval.Fixpoint.statically_local ~self:"p" r
        = (Boundary.analyze ~self:"p" r = None));
    QCheck.Test.make ~count:1000
      ~name:"reorder hints strictly grow a safe local prefix" rule_arb
      (fun r ->
        match Safety.check_rule r with
        | Error _ -> true
        | Ok () -> (
          match Boundary.improve ~self:"p" r with
          | None -> true
          | Some imp ->
            let sorted b = List.sort Literal.compare b in
            Safety.check_rule imp.Boundary.reordered = Ok ()
            && sorted imp.Boundary.reordered.Rule.body = sorted r.Rule.body
            && imp.Boundary.new_index
               > (match Boundary.analyze ~self:"p" r with
                 | Some rep -> rep.Boundary.index
                 | None -> max_int)));
    QCheck.Test.make ~count:300
      ~name:"renamed rules are detected as duplicates" rule_arb (fun r ->
        let r' = Rule.rename ~suffix:"_dup" r in
        let prog = [ Program.Rule r; Program.Rule r' ] in
        List.mem "WDL040"
          (List.map
             (fun (d : Diagnostic.t) -> d.code)
             (Analysis.check_plain ~self:"p" prog)));
  ]

let suite =
  golden_suite @ unit_suite
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
