(* Builtin relation modules: sketch properties, differential oracles
   (module state vs. naive recompute from the write history), and the
   peer-level integration — guarded writes, stage-boundary ticks,
   deterministic clocks, snapshot round-trips. *)
open Wdl_syntax
open Wdl_builtin

let tc name f = Alcotest.test_case name `Quick f

let peer_with src =
  let p = Webdamlog.Peer.create "p" in
  (match Webdamlog.Peer.load_string p src with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" e);
  p

let ins p rel args =
  match Webdamlog.Peer.insert p (Fact.make ~rel ~peer:"p" args) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert into %s: %s" rel e

let del p rel args =
  match Webdamlog.Peer.delete p (Fact.make ~rel ~peer:"p" args) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "delete from %s: %s" rel e

let contents p rel =
  List.map (fun (f : Fact.t) -> f.Fact.args) (Webdamlog.Peer.query p rel)

(* ---------------- sketches ---------------- *)

let sketch_suite =
  [
    tc "bloom: no false negatives, bounded false positives" (fun () ->
        let n = 5_000 and fpr = 0.02 in
        let b = Sketch.Bloom.for_capacity ~fpr n in
        for i = 0 to n - 1 do
          Sketch.Bloom.add b (Printf.sprintf "member-%d" i)
        done;
        for i = 0 to n - 1 do
          if not (Sketch.Bloom.mem b (Printf.sprintf "member-%d" i)) then
            Alcotest.failf "false negative on member-%d" i
        done;
        let fp = ref 0 in
        for i = 0 to n - 1 do
          if Sketch.Bloom.mem b (Printf.sprintf "stranger-%d" i) then incr fp
        done;
        let rate = float_of_int !fp /. float_of_int n in
        if rate > 3.0 *. fpr then
          Alcotest.failf "false-positive rate %.4f exceeds 3x target %.4f"
            rate fpr);
    tc "bloom: add_mem reports prior membership" (fun () ->
        let b = Sketch.Bloom.for_capacity 100 in
        Alcotest.(check bool) "novel" false (Sketch.Bloom.add_mem b "x");
        Alcotest.(check bool) "dup" true (Sketch.Bloom.add_mem b "x"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"cms: estimate dominates exact count"
         QCheck.(small_list (pair (int_range 0 20) (int_range 1 5)))
         (fun stream ->
           let cms = Sketch.Cms.create ~width:64 ~depth:3 () in
           let exact = Hashtbl.create 16 in
           List.iter
             (fun (key, w) ->
               ignore (Sketch.Cms.add cms ~count:w key);
               Hashtbl.replace exact key
                 (w + Option.value ~default:0 (Hashtbl.find_opt exact key)))
             stream;
           Hashtbl.fold
             (fun key count ok ->
               ok && Sketch.Cms.estimate cms key >= count)
             exact true
           && Sketch.Cms.total cms
              = List.fold_left (fun acc (_, w) -> acc + w) 0 stream));
  ]

(* ---------------- differential oracles ---------------- *)

(* A random per-stage schedule of writes, replayed both through a live
   peer (module state, ticks, flushes) and through a naive
   recompute-from-history oracle; materializations must be
   byte-identical after every stage. *)

type wop = Ins of int | Del of int

let wop_gen =
  QCheck.Gen.(
    let* v = int_range 0 4 in
    let* d = int_range 0 3 in
    return (if d = 0 then Del v else Ins v))

let sched_gen =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* stages = list_size (int_range 1 6) (list_size (int_range 0 5) wop_gen) in
    return (n, stages))

let sched_print (n, stages) =
  Printf.sprintf "n=%d %s" n
    (String.concat " | "
       (List.map
          (fun ops ->
            String.concat ","
              (List.map
                 (function
                   | Ins v -> Printf.sprintf "+%d" v
                   | Del v -> Printf.sprintf "-%d" v)
                 ops))
          stages))

let sched_arb = QCheck.make ~print:sched_print sched_gen

(* Stage-horizon window/ttl oracle: last-write stamps, evict at
   stamp <= stage - n. Both kinds share make_stamped, so one oracle
   covers both declarations. *)
let stamped_oracle ~n stages =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.mapi
    (fun idx ops ->
      let stage = idx + 1 in
      List.iter
        (function
          | Ins v -> Hashtbl.replace tbl v stage
          | Del v -> Hashtbl.remove tbl v)
        ops;
      let doomed =
        Hashtbl.fold
          (fun v st acc -> if st <= stage - n then v :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) doomed;
      Hashtbl.fold (fun v _ acc -> [ Value.Int v ] :: acc) tbl []
      |> List.sort compare)
    stages

let drive_stamped decl_src ~rel stages =
  let p = peer_with decl_src in
  List.map
    (fun ops ->
      List.iter
        (function
          | Ins v -> ins p rel [ Value.Int v ]
          | Del v -> del p rel [ Value.Int v ])
        ops;
      ignore (Webdamlog.Peer.stage p);
      contents p rel)
    stages

(* topk oracle: mirror the module's queue/totals mechanics exactly,
   then rank (total desc, key asc) and take k. *)
let topk_oracle ~n ~k stages =
  let q : (int * int * int) Queue.t = Queue.create () in
  let totals : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let bump key w =
    let next = Option.value ~default:0 (Hashtbl.find_opt totals key) + w in
    if next = 0 then Hashtbl.remove totals key
    else Hashtbl.replace totals key next
  in
  List.mapi
    (fun idx ops ->
      let stage = idx + 1 in
      List.iter
        (function
          | Ins v ->
            (* key = v mod 3, weight = 1 + (v mod 2): a few heavy keys *)
            let key = v mod 3 and w = 1 + (v mod 2) in
            Queue.push (stage, key, w) q;
            bump key w
          | Del _ -> ())
        ops;
      let rec drop () =
        match Queue.peek_opt q with
        | Some (st, key, w) when st <= stage - n ->
          ignore (Queue.pop q);
          bump key (-w);
          drop ()
        | _ -> ()
      in
      drop ();
      Hashtbl.fold (fun key total acc -> (key, total) :: acc) totals []
      |> List.sort (fun (k1, t1) (k2, t2) ->
             match Int.compare t2 t1 with
             | 0 -> Int.compare k1 k2
             | c -> c)
      |> List.filteri (fun i _ -> i < k)
      |> List.map (fun (key, total) -> [ Value.Int key; Value.Int total ])
      |> List.sort compare)
    stages

let drive_topk ~n ~k stages =
  let p =
    peer_with
      (Printf.sprintf "builtin topk t@p(key, total) with k=%d, size=%d;" k n)
  in
  List.map
    (fun ops ->
      List.iter
        (function
          | Ins v ->
            ins p "t" [ Value.Int (v mod 3); Value.Int (1 + (v mod 2)) ]
          | Del _ -> ())
        ops;
      ignore (Webdamlog.Peer.stage p);
      contents p "t")
    stages

let differential_suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:120
         ~name:"window: peer materialization = naive recompute, every stage"
         sched_arb
         (fun (n, stages) ->
           drive_stamped
             (Printf.sprintf "builtin window w@p(x) with size=%d;" n)
             ~rel:"w" stages
           = stamped_oracle ~n stages));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:120
         ~name:"ttl: peer materialization = naive recompute, every stage"
         sched_arb
         (fun (n, stages) ->
           drive_stamped
             (Printf.sprintf "builtin ttl f@p(x) with ttl=%d;" n)
             ~rel:"f" stages
           = stamped_oracle ~n stages));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:120
         ~name:"topk: peer materialization = exact ranking, every stage"
         sched_arb
         (fun (n, stages) ->
           drive_topk ~n ~k:2 stages = topk_oracle ~n ~k:2 stages));
  ]

(* ---------------- peer integration ---------------- *)

let integration_suite =
  [
    tc "time: read-only, rewritten each stage by the injected clock" (fun () ->
        let p = peer_with "builtin time clock@p(stage, now);" in
        Webdamlog.Peer.set_clock p (fun () -> 42.5);
        (match
           Webdamlog.Peer.insert p
             (Fact.make ~rel:"clock" ~peer:"p" [ Value.Int 9; Value.Float 0. ])
         with
        | Ok () -> Alcotest.fail "write into time must be rejected"
        | Error _ -> ());
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check bool)
          "stage 1" true
          (contents p "clock" = [ [ Value.Int 1; Value.Float 42.5 ] ]);
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check bool)
          "stage 2" true
          (contents p "clock" = [ [ Value.Int 2; Value.Float 42.5 ] ]));
    tc "time: rules can read the clock" (fun () ->
        let p =
          peer_with
            "builtin time clock@p(stage, now);\n\
             int snap@p(s);\n\
             snap@p($s) :- clock@p($s, $t);"
        in
        Webdamlog.Peer.set_clock p (fun () -> 1.0);
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check bool)
          "view sees stage" true
          (contents p "snap" = [ [ Value.Int 1 ] ]));
    tc "seconds horizon expires by the injected clock" (fun () ->
        let now = ref 0.0 in
        let p = peer_with "builtin ttl recent@p(x) with seconds=10;" in
        Webdamlog.Peer.set_clock p (fun () -> !now);
        ins p "recent" [ Value.Int 1 ];
        ignore (Webdamlog.Peer.stage p);
        now := 5.0;
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check int) "alive at 5s" 1 (List.length (contents p "recent"));
        (* a re-write refreshes the expiry *)
        ins p "recent" [ Value.Int 1 ];
        now := 12.0;
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check int)
          "refreshed write survives" 1
          (List.length (contents p "recent"));
        now := 16.0;
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check int) "expired" 0 (List.length (contents p "recent")));
    tc "bloom: dedup drops duplicates, window is one stage" (fun () ->
        let p = peer_with "builtin bloom seen@p(x) with bits=4096;" in
        ins p "seen" [ Value.Int 1 ];
        ins p "seen" [ Value.Int 2 ];
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check int) "two novel" 2 (List.length (contents p "seen"));
        ins p "seen" [ Value.Int 2 ];
        (* duplicate *)
        ins p "seen" [ Value.Int 3 ];
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check bool)
          "only the fresh novel tuple" true
          (contents p "seen" = [ [ Value.Int 3 ] ]);
        let stats =
          Builtin.Registry.totals (Webdamlog.Peer.builtins p)
        in
        Alcotest.(check int) "one duplicate dropped" 1 stats.Builtin.dropped);
    tc "cms: heavy hitters with exact-dominating totals" (fun () ->
        let p = peer_with "builtin cms heavy@p(key, est) with k=2;" in
        List.iter
          (fun (k, w) -> ins p "heavy" [ Value.String k; Value.Int w ])
          [ ("a", 5); ("b", 2); ("c", 1); ("a", 4); ("b", 1) ];
        ignore (Webdamlog.Peer.stage p);
        (* width=1024 on 3 keys: estimates are exact *)
        Alcotest.(check bool)
          "top-2" true
          (contents p "heavy"
          = [
              [ Value.String "a"; Value.Int 9 ]; [ Value.String "b"; Value.Int 3 ];
            ]));
    tc "rules write into builtins through the induced path" (fun () ->
        let p =
          peer_with
            "builtin window recent@p(x) with size=8;\n\
             ext feed@p(x);\n\
             recent@p($x) :- feed@p($x);"
        in
        ins p "feed" [ Value.Int 7 ];
        ignore (Webdamlog.Peer.stage p);
        (* the derived head is inductive: visible one stage later *)
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check bool)
          "derived into the window" true
          (contents p "recent" = [ [ Value.Int 7 ] ]));
    tc "builtin relations and writes are never journaled" (fun () ->
        let path = Filename.temp_file "wdl_builtin" ".journal" in
        let j = Wdl_store.Journal.open_ path in
        let p = Webdamlog.Peer.create "p" in
        Webdamlog.Peer.set_journal p (Some j);
        (match
           Webdamlog.Peer.load_string p
             "builtin window w@p(x) with size=2;\next e@p(x);"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "load: %s" e);
        ins p "w" [ Value.Int 1 ];
        ins p "e" [ Value.Int 2 ];
        Wdl_store.Journal.close j;
        let entries =
          match Wdl_store.Journal.replay path with
          | Ok es -> es
          | Error e -> Alcotest.failf "replay: %s" e
        in
        Sys.remove path;
        let is_w = function
          | Wdl_store.Journal.Insert f | Wdl_store.Journal.Delete f ->
            f.Fact.rel = "w"
          | Wdl_store.Journal.Declare _ -> false
        in
        Alcotest.(check bool)
          "no w fact entries" true
          (not (List.exists is_w entries));
        Alcotest.(check bool)
          "w declaration journaled" true
          (List.exists
             (function
               | Wdl_store.Journal.Declare d ->
                 d.Decl.rel = "w" && d.Decl.builtin <> None
               | _ -> false)
             entries));
    tc "snapshot round-trip re-registers modules, state restarts empty"
      (fun () ->
        let p =
          peer_with
            "builtin window w@p(x) with size=2;\n\
             ext e@p(x);\n\
             e@p(5);"
        in
        ins p "w" [ Value.Int 1 ];
        ignore (Webdamlog.Peer.stage p);
        let text = Webdamlog.Peer.snapshot p in
        match Webdamlog.Peer.restore text with
        | Error e -> Alcotest.failf "restore: %s" e
        | Ok q ->
          Alcotest.(check bool)
            "module re-registered" true
            (Builtin.Registry.mem (Webdamlog.Peer.builtins q) "w");
          Alcotest.(check int)
            "window restarts empty" 0
            (List.length (contents q "w"));
          Alcotest.(check bool)
            "plain facts survive" true
            (contents q "e" = [ [ Value.Int 5 ] ]);
          (* the restored module is live *)
          ins q "w" [ Value.Int 3 ];
          ignore (Webdamlog.Peer.stage q);
          Alcotest.(check bool)
            "restored module accepts writes" true
            (contents q "w" = [ [ Value.Int 3 ] ]));
    tc "conflicting redeclaration is rejected, identical one is idempotent"
      (fun () ->
        let p = peer_with "builtin window w@p(x) with size=2;" in
        (match
           Webdamlog.Peer.load_string p "builtin window w@p(x) with size=2;"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "idempotent redeclare: %s" e);
        match
          Webdamlog.Peer.load_string p "builtin window w@p(x) with size=3;"
        with
        | Ok () -> Alcotest.fail "conflicting redeclare must be rejected"
        | Error _ -> ());
    tc "rule head into a read-only builtin is rejected at install" (fun () ->
        let p =
          peer_with "builtin time clock@p(stage, now);\next e@p(s, n);"
        in
        match
          Webdamlog.Peer.load_string p "clock@p($s, $n) :- e@p($s, $n);"
        with
        | Ok () -> Alcotest.fail "rule writing time must be rejected"
        | Error _ -> ());
    tc "a peer with only quiet builtins still quiesces" (fun () ->
        let p = peer_with "builtin window w@p(x) with size=1;" in
        ins p "w" [ Value.Int 1 ];
        ignore (Webdamlog.Peer.stage p);
        ignore (Webdamlog.Peer.stage p);
        (* window emptied at stage 2's tick; later stages are no-ops *)
        ignore (Webdamlog.Peer.stage p);
        ignore (Webdamlog.Peer.stage p);
        Alcotest.(check int) "empty" 0 (List.length (contents p "w"));
        let s = Webdamlog.Peer.stats p in
        Alcotest.(check int) "four stages ran" 4 s.Webdamlog.Peer.stages);
  ]

let suite = sketch_suite @ differential_suite @ integration_suite
