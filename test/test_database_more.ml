(* Additional store coverage: multi-pattern indexes, copies, dumps. *)
open Wdl_syntax
open Wdl_store

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let t ints = Tuple.of_list (List.map (fun n -> Value.Int n) ints)

let collect rel bound =
  let acc = ref [] in
  Relation.lookup rel bound (fun tu -> acc := tu :: !acc);
  List.sort Tuple.compare !acc

let suite =
  [
    tc "distinct binding patterns build distinct indexes" (fun () ->
        let r = Relation.create ~arity:3 () in
        for i = 0 to 99 do
          ignore (Relation.insert r (t [ i mod 4; i mod 5; i ]))
        done;
        (* The ad-hoc path builds an index on a signature's second
           probe; one-off probes scan. *)
        let probe_twice bound = ignore (collect r bound); ignore (collect r bound) in
        probe_twice [ (0, Value.Int 1) ];
        probe_twice [ (1, Value.Int 2) ];
        probe_twice [ (0, Value.Int 1); (1, Value.Int 2) ];
        check_int "three indexes" 3 (Relation.index_count r);
        (* Reusing a pattern does not create another. *)
        ignore (collect r [ (0, Value.Int 3) ]);
        check_int "still three" 3 (Relation.index_count r));
    tc "one-off probes never materialise an index" (fun () ->
        let r = Relation.create ~arity:2 () in
        for i = 0 to 99 do
          ignore (Relation.insert r (t [ i mod 3; i ]))
        done;
        ignore (collect r [ (0, Value.Int 1) ]);
        ignore (collect r [ (1, Value.Int 7) ]);
        check_int "no indexes from single probes" 0 (Relation.index_count r));
    tc "index cap evicts the least-used unpinned index" (fun () ->
        let r = Relation.create ~arity:8 () in
        for i = 0 to 99 do
          ignore
            (Relation.insert r
               (t [ i mod 2; i mod 3; i mod 4; i mod 5; i mod 6; i mod 7; i mod 8; i ]))
        done;
        (* Ten distinct single-position signatures, probed twice each:
           only [max_indexes] = 8 may survive, evictions counted. *)
        let before = !Relation.evictions_total in
        for p = 0 to 7 do
          ignore (collect r [ (p, Value.Int 1) ]);
          ignore (collect r [ (p, Value.Int 1) ])
        done;
        for p = 0 to 1 do
          let bound = [ (p, Value.Int 0); (7, Value.Int 5) ] in
          ignore (collect r bound);
          ignore (collect r bound)
        done;
        check_bool "capped" (Relation.index_count r <= 8);
        check_bool "evicted" (!Relation.evictions_total > before);
        (* Results stay correct through evictions. *)
        check_int "bucket" 50 (List.length (collect r [ (0, Value.Int 1) ])));
    tc "clear drops data, keeps index skeletons usable" (fun () ->
        let r = Relation.create ~arity:2 () in
        for i = 0 to 49 do
          ignore (Relation.insert r (t [ i mod 3; i ]))
        done;
        ignore (collect r [ (0, Value.Int 1) ]);
        ignore (collect r [ (0, Value.Int 1) ]);
        check_bool "indexed" (Relation.index_count r > 0);
        Relation.clear r;
        check_int "empty" 0 (Relation.cardinal r);
        (* Usable again after clear. *)
        ignore (Relation.insert r (t [ 1; 2 ]));
        check_int "hit" 1 (List.length (collect r [ (0, Value.Int 1) ])));
    tc "copy preserves indexes and stays independent" (fun () ->
        let r = Relation.create ~arity:2 () in
        for i = 0 to 49 do
          ignore (Relation.insert r (t [ i mod 3; i ]))
        done;
        ignore (collect r [ (0, Value.Int 1) ]);
        ignore (collect r [ (0, Value.Int 1) ]);
        check_bool "indexed" (Relation.index_count r > 0);
        let builds = !Relation.builds_total in
        let c = Relation.copy r in
        (* Regression (satellite): copy used to drop every index, so a
           snapshot's first lookup triggered a rebuild storm. *)
        check_int "copy keeps the indexes" (Relation.index_count r)
          (Relation.index_count c);
        check_int "lookup on the copy answers without rebuilding" 17
          (List.length (collect c [ (0, Value.Int 1) ]));
        check_int "no index build on the copy path" builds !Relation.builds_total;
        ignore (Relation.delete c (t [ 1; 1 ]));
        check_bool "original keeps the tuple" (Relation.mem r (t [ 1; 1 ]));
        check_int "copy dropped it" 16 (List.length (collect c [ (0, Value.Int 1) ])));
    tc "database copy is deep" (fun () ->
        let db = Database.create () in
        ignore (Database.insert db ~rel:"m" (t [ 1 ]));
        let db' = Database.copy db in
        ignore (Database.insert db' ~rel:"m" (t [ 2 ]));
        ignore (Database.insert db' ~rel:"fresh" (t [ 3 ]));
        check_bool "original unchanged" (not (Database.mem db ~rel:"m" (t [ 2 ])));
        check_bool "no fresh in original" (Database.find db "fresh" = None));
    tc "database pp dumps re-parseable facts" (fun () ->
        let db = Database.create () in
        ignore (Database.insert db ~rel:"m" (t [ 2 ]));
        ignore (Database.insert db ~rel:"m" (t [ 1 ]));
        let dump = Format.asprintf "%a" (Database.pp ~peer:"p") db in
        match Parser.program dump with
        | Ok stmts -> check_int "two facts" 2 (List.length stmts)
        | Error e -> Alcotest.fail e);
    tc "empty binding list scans everything" (fun () ->
        let r = Relation.create ~arity:1 () in
        for i = 0 to 9 do
          ignore (Relation.insert r (t [ i ]))
        done;
        check_int "all" 10 (List.length (collect r [])));
    tc "lookup on a value-mismatched type finds nothing" (fun () ->
        let r = Relation.create ~arity:1 () in
        ignore (Relation.insert r (t [ 1 ]));
        check_int "string key" 0
          (List.length (collect r [ (0, Value.String "1") ])));
  ]
