(* Differential testing: the compiled plan evaluator (Fixpoint) against
   the substitution-based oracle (Reference) on random local programs
   covering recursion, negation, builtins, aggregation, relation
   variables and delegation boundaries. *)
open Wdl_syntax
open Wdl_store
open Wdl_eval

(* {1 Random local programs} *)

type dspec = {
  facts : (string * int list) list;  (* relation, args (arity 1 or 2) *)
  names : string list;               (* contents of the names relation *)
  rules : string list;
}

let rule_pool =
  [
    (* recursion *)
    "tc@p($x,$y) :- e@p($x,$y);";
    "tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);";
    (* negation over base data *)
    "only@p($x) :- r@p($x), not s@p($x);";
    (* negation over a view *)
    "vr@p($x) :- r@p($x);";
    "nots@p($x) :- s@p($x), not vr@p($x);";
    (* builtins *)
    "shift@p($y) :- r@p($x), $y := $x + 10;";
    "bigr@p($x) :- r@p($x), $x >= 3;";
    (* aggregation *)
    "counts@p(count($x)) :- r@p($x);";
    "ends@p($x, max($y)) :- e@p($x,$y);";
    (* relation variable *)
    "anyof@p($n, $x) :- names@p($n), $n@p($x);";
    (* delegation boundary (suspension output) *)
    "away@p($x) :- r@p($x), data@q($x);";
    (* inductive update *)
    "accum@p($x) :- r@p($x);";
    (* messaging *)
    "out@q($x) :- s@p($x);";
  ]

let fact_gen =
  QCheck.Gen.(
    let* rel = oneofl [ "e"; "r"; "s" ] in
    let* arity2 = bool in
    let* a = int_range 0 5 in
    let* b = int_range 0 5 in
    return (rel, if arity2 && rel = "e" then [ a; b ] else [ a ]))

let dspec_gen =
  QCheck.Gen.(
    let* facts = list_size (int_range 3 20) fact_gen in
    let* names = list_size (int_range 0 2) (oneofl [ "r"; "s" ]) in
    let* rules = list_size (int_range 1 6) (oneofl rule_pool) in
    return { facts; names; rules })

let dspec_print s =
  Printf.sprintf "facts=[%s] names=[%s]\n%s"
    (String.concat "; "
       (List.map
          (fun (r, args) ->
            Printf.sprintf "%s(%s)" r
              (String.concat "," (List.map string_of_int args)))
          s.facts))
    (String.concat ";" s.names)
    (String.concat "\n" s.rules)

let dspec_arb = QCheck.make ~print:dspec_print dspec_gen

let views = [ "tc"; "only"; "vr"; "nots"; "shift"; "bigr"; "counts"; "ends"; "anyof"; "away" ]
let view_arity = function "tc" | "ends" | "anyof" -> 2 | _ -> 1

let declare_views db =
  List.iter
    (fun v ->
      ignore
        (Database.declare db
           (Decl.make ~kind:Decl.Intensional ~rel:v ~peer:"p"
              (List.init (view_arity v) (Printf.sprintf "c%d")))))
    views

let build_db spec =
  let db = Database.create () in
  declare_views db;
  List.iter
    (fun (rel, args) ->
      ignore
        (Database.insert db ~rel
           (Tuple.of_list (List.map (fun n -> Value.Int n) args))))
    spec.facts;
  List.iter
    (fun n ->
      ignore (Database.insert db ~rel:"names" (Tuple.of_list [ Value.String n ])))
    spec.names;
  db

let canon_result (r : Fixpoint.result) =
  let facts l = List.sort Fact.compare l in
  let susp =
    List.sort compare
      (List.map
         (fun (d, rule) -> (d, Format.asprintf "%a" Rule.pp rule))
         r.Fixpoint.suspensions)
  in
  ( facts r.Fixpoint.deduced,
    facts r.Fixpoint.induced,
    facts r.Fixpoint.messages,
    susp )

let run_engine engine spec =
  let db = build_db spec in
  let rules =
    List.map Parser.parse_rule
      (List.map
         (fun s -> String.sub s 0 (String.length s - 1) (* drop ';' *))
         spec.rules)
  in
  match engine ~self:"p" db rules with
  | Ok r -> Some (canon_result r)
  | Error _ -> None

(* {1 Multi-stage scripts through a peer}

   Drives a full [Peer] — compiled-program cache, activation
   scheduling, quiescence fast path — through several stages with
   facts, rule additions and delegation installs arriving mid-run
   (each of which invalidates the cached program), and checks it
   against (a) a peer with the incremental engine disabled, i.e. the
   pre-cache per-stage recompilation path, and (b) the [Reference]
   oracle re-run from scratch on the database state after every
   stage. *)

type stage_ev = {
  inserts : (string * int list) list;
  new_rule : string option;  (* added locally mid-run *)
  delegate : string option;  (* arrives as a delegation install from q *)
}

type script = { base : dspec; stage_evs : stage_ev list }

(* Delegations stay within what [install_delegation] accepts for any
   rule set from the pool (no negation rules, which could fail
   stratification against an already-installed cycle partner). *)
let deleg_pool =
  [
    "tc@p($x,$y) :- e@p($x,$y);";
    "tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);";
    "counts@p(count($x)) :- r@p($x);";
    "accum@p($x) :- r@p($x);";
    "out@q($x) :- s@p($x);";
    "away@p($x) :- r@p($x), data@q($x);";
  ]

let stage_ev_gen =
  QCheck.Gen.(
    let* inserts = list_size (int_range 0 3) fact_gen in
    let* with_rule = int_range 0 2 in
    let* rule = oneofl rule_pool in
    let* with_deleg = int_range 0 3 in
    let* deleg = oneofl deleg_pool in
    return
      {
        inserts;
        new_rule = (if with_rule = 0 then Some rule else None);
        delegate = (if with_deleg = 0 then Some deleg else None);
      })

let script_gen =
  QCheck.Gen.(
    let* base = dspec_gen in
    let* stage_evs = list_size (int_range 1 4) stage_ev_gen in
    return { base; stage_evs })

let script_print s =
  let ev e =
    Printf.sprintf "inserts=[%s] rule=%s deleg=%s"
      (String.concat "; "
         (List.map
            (fun (r, args) ->
              Printf.sprintf "%s(%s)" r
                (String.concat "," (List.map string_of_int args)))
            e.inserts))
      (Option.value ~default:"-" e.new_rule)
      (Option.value ~default:"-" e.delegate)
  in
  dspec_print s.base ^ "\n" ^ String.concat "\n" (List.map ev s.stage_evs)

let script_arb = QCheck.make ~print:script_print script_gen

let parse_rule_str s = Parser.parse_rule (String.sub s 0 (String.length s - 1))

let dump_db db =
  List.sort compare
    (Database.fold
       (fun (i : Database.info) acc ->
         (i.Database.name, i.Database.kind, Relation.to_sorted_list i.Database.data)
         :: acc)
       db [])

let intensional_dump db =
  List.filter (fun (_, kind, _) -> kind = Decl.Intensional) (dump_db db)

(* Run the script on one peer; two trailing empty stages exercise the
   quiescence fast path. Returns one (db dump, sorted outbound
   messages) observation per stage. *)
let drive ~incremental script =
  let open Webdamlog in
  let p = Peer.create ~incremental "p" in
  let db = Peer.database p in
  declare_views db;
  let insert_fact (rel, args) =
    ignore
      (Peer.insert p
         (Fact.make ~rel ~peer:"p" (List.map (fun n -> Value.Int n) args)))
  in
  List.iter insert_fact script.base.facts;
  List.iter
    (fun n ->
      ignore (Peer.insert p (Fact.make ~rel:"names" ~peer:"p" [ Value.String n ])))
    script.base.names;
  List.iter (fun r -> ignore (Peer.add_rule p (parse_rule_str r))) script.base.rules;
  let quiet = { inserts = []; new_rule = None; delegate = None } in
  List.map
    (fun ev ->
      List.iter insert_fact ev.inserts;
      Option.iter
        (fun r -> ignore (Peer.add_rule p (parse_rule_str r)))
        ev.new_rule;
      Option.iter
        (fun r ->
          Peer.receive p
            (Message.make ~src:"q" ~dst:"p" ~stage:0
               ~installs:[ parse_rule_str r ] ()))
        ev.delegate;
      let out = Peer.stage p in
      let obs =
        ( dump_db db,
          List.sort compare (List.map (Format.asprintf "%a" Message.pp) out) )
      in
      (p, obs))
    (script.stage_evs @ [ quiet; quiet ])

(* From-scratch oracle for the peer's post-stage state: clear the
   views on a copy and let [Reference] rebuild them under the peer's
   current rule set. *)
let oracle_agrees (p : Webdamlog.Peer.t) =
  let open Webdamlog in
  let db = Database.copy (Peer.database p) in
  Database.clear_intensional db;
  let rules = Peer.rules p @ List.map snd (Peer.delegated_rules p) in
  match Reference.run ~self:"p" db rules with
  | Error _ -> false
  | Ok _ -> intensional_dump db = intensional_dump (Peer.database p)

let tests =
  [
    QCheck.Test.make ~count:150
      ~name:"compiled evaluator agrees with the reference oracle" dspec_arb
      (fun spec ->
        run_engine (fun ~self db rules -> Fixpoint.run ~self db rules) spec
        = run_engine (fun ~self db rules -> Reference.run ~self db rules) spec);
    QCheck.Test.make ~count:80
      ~name:"both engines agree under the naive strategy too" dspec_arb
      (fun spec ->
        run_engine
          (fun ~self db rules ->
            Fixpoint.run ~strategy:Fixpoint.Naive ~self db rules)
          spec
        = run_engine
            (fun ~self db rules ->
              Reference.run ~strategy:Fixpoint.Naive ~self db rules)
            spec);
    QCheck.Test.make ~count:60
      ~name:"provenance premises agree on derived facts" dspec_arb
      (fun spec ->
        let prov engine =
          let db = build_db spec in
          let rules =
            List.map Parser.parse_rule
              (List.map (fun s -> String.sub s 0 (String.length s - 1)) spec.rules)
          in
          match engine ~self:"p" db rules with
          | Ok r ->
            Some
              (List.sort compare
                 (List.map
                    (fun (d : Fixpoint.derivation) ->
                      ( Format.asprintf "%a" Fact.pp d.Fixpoint.fact,
                        List.sort compare
                          (List.map (Format.asprintf "%a" Fact.pp)
                             d.Fixpoint.premises) ))
                    r.Fixpoint.provenance))
          | Error _ -> None
        in
        (* Premise sets can legitimately differ when a fact has several
           derivations (each engine records the first it finds), so
           compare only the covered fact sets. *)
        let facts_of = Option.map (List.map fst) in
        facts_of
          (prov (fun ~self db rules ->
               Fixpoint.run ~record_provenance:true ~self db rules))
        = facts_of
            (prov (fun ~self db rules ->
                 Reference.run ~record_provenance:true ~self db rules)));
    QCheck.Test.make ~count:80
      ~name:
        "multi-stage: incremental engine agrees with per-stage recompilation"
      script_arb
      (fun script ->
        List.map snd (drive ~incremental:true script)
        = List.map snd (drive ~incremental:false script));
    QCheck.Test.make ~count:80
      ~name:"multi-stage: every stage's views agree with the reference oracle"
      script_arb
      (fun script ->
        List.for_all (fun (p, _) -> oracle_agrees p) (drive ~incremental:true script));
  ]

let suite = List.map QCheck_alcotest.to_alcotest tests
