open Wdl_syntax
open Wdl_store
open Wdl_eval

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

(* Build a database for peer "p" from program text (decls + facts). *)
let db_of src =
  let db = Database.create () in
  List.iter
    (function
      | Wdl_syntax.Program.Decl d ->
        (match Database.declare db d with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Format.asprintf "%a" Database.pp_error e))
      | Wdl_syntax.Program.Fact f ->
        (match Database.insert db ~rel:f.Fact.rel (Tuple.of_list f.Fact.args) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Format.asprintf "%a" Database.pp_error e))
      | Wdl_syntax.Program.Rule _ -> Alcotest.fail "db_of: rules not allowed here")
    (Parser.parse_program src);
  db

let run ?strategy db srcs =
  match Fixpoint.run ?strategy ~self:"p" db (List.map Parser.parse_rule srcs) with
  | Ok r -> r
  | Error e -> Alcotest.fail (Format.asprintf "%a" Stratify.pp_error e)

let rel_facts db rel =
  match Database.find db rel with
  | None -> []
  | Some info -> Relation.to_sorted_list info.Database.data

let chain_db n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int tc@p(x, y);\n";
  for i = 0 to n - 2 do
    Buffer.add_string buf (Printf.sprintf "edge@p(%d, %d);\n" i (i + 1))
  done;
  db_of (Buffer.contents buf)

let tc_rules =
  [ "tc@p($x,$y) :- edge@p($x,$y)"; "tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z)" ]

let suite =
  [
    tc "transitive closure on a chain" (fun () ->
        let n = 20 in
        let db = chain_db n in
        let r = run db tc_rules in
        check_int "tc size" (n * (n - 1) / 2) (List.length (rel_facts db "tc"));
        check_bool "iterations > 2" (r.Fixpoint.iterations > 2));
    tc "seminaive and naive agree" (fun () ->
        let db1 = chain_db 12 and db2 = chain_db 12 in
        ignore (run ~strategy:Fixpoint.Seminaive db1 tc_rules);
        ignore (run ~strategy:Fixpoint.Naive db2 tc_rules);
        check_bool "same tc"
          (List.equal Tuple.equal (rel_facts db1 "tc") (rel_facts db2 "tc")));
    tc "naive re-derives much more" (fun () ->
        let db1 = chain_db 12 and db2 = chain_db 12 in
        let s = run ~strategy:Fixpoint.Seminaive db1 tc_rules in
        let n = run ~strategy:Fixpoint.Naive db2 tc_rules in
        check_bool "fewer derivations"
          (s.Fixpoint.derivations < n.Fixpoint.derivations));
    tc "deduced facts are reported and inserted" (fun () ->
        let db = db_of "int v@p(x); a@p(1); a@p(2);" in
        let r = run db [ "v@p($x) :- a@p($x)" ] in
        check_int "deduced" 2 (List.length r.Fixpoint.deduced);
        check_int "stored" 2 (List.length (rel_facts db "v")));
    tc "extensional heads are induced, not inserted" (fun () ->
        let db = db_of "a@p(1);" in
        let r = run db [ "b@p($x) :- a@p($x)" ] in
        check_int "induced" 1 (List.length r.Fixpoint.induced);
        check_int "not stored yet" 0 (List.length (rel_facts db "b")));
    tc "remote heads become messages" (fun () ->
        let db = db_of "a@p(1); a@p(2);" in
        let r = run db [ "b@q($x) :- a@p($x)" ] in
        check_int "messages" 2 (List.length r.Fixpoint.messages);
        List.iter
          (fun (f : Fact.t) ->
            Alcotest.check Alcotest.string "dst" "q" f.Fact.peer)
          r.Fixpoint.messages);
    tc "remote body atom suspends with the right residual" (fun () ->
        let db = db_of {|sel@p("q1"); sel@p("q2");|} in
        let r =
          run db [ "v@p($x) :- sel@p($a), data@$a($x), more@p($x)" ]
        in
        check_int "suspensions" 2 (List.length r.Fixpoint.suspensions);
        let expected =
          Parser.parse_rule "v@p($x) :- data@q1($x), more@p($x)"
        in
        check_bool "residual for q1"
          (List.exists
             (fun (dst, rule) -> dst = "q1" && Rule.equal rule expected)
             r.Fixpoint.suspensions));
    tc "peer variable resolving to self continues locally" (fun () ->
        let db = db_of {|sel@p("p"); data@p(42); int v@p(x);|} in
        let r = run db [ "v@p($x) :- sel@p($a), data@$a($x)" ] in
        check_int "no suspension" 0 (List.length r.Fixpoint.suspensions);
        check_int "derived locally" 1 (List.length (rel_facts db "v")));
    tc "mixed self/remote bindings split correctly" (fun () ->
        let db = db_of {|sel@p("p"); sel@p("q"); data@p(1); int v@p(x);|} in
        let r = run db [ "v@p($x) :- sel@p($a), data@$a($x)" ] in
        check_int "one suspension" 1 (List.length r.Fixpoint.suspensions);
        check_int "one local" 1 (List.length (rel_facts db "v")));
    tc "stratified negation computes the complement" (fun () ->
        let db =
          db_of "int v@p(x); int w@p(x); a@p(1); a@p(2); a@p(3); b@p(2);"
        in
        ignore
          (run db
             [ "v@p($x) :- a@p($x), b@p($x)"; "w@p($x) :- a@p($x), not v@p($x)" ]);
        check_int "w = a minus v" 2 (List.length (rel_facts db "w")));
    tc "negation over extensional relations" (fun () ->
        let db = db_of "int v@p(x); a@p(1); a@p(2); blocked@p(1);" in
        ignore (run db [ "v@p($x) :- a@p($x), not blocked@p($x)" ]);
        check_int "v" 1 (List.length (rel_facts db "v")));
    tc "comparison builtins filter" (fun () ->
        let db = db_of "int big@p(x); n@p(1); n@p(5); n@p(10);" in
        ignore (run db [ "big@p($x) :- n@p($x), $x >= 5" ]);
        check_int "big" 2 (List.length (rel_facts db "big")));
    tc "assignment computes new values" (fun () ->
        let db = db_of "int doubled@p(x, y); n@p(3);" in
        ignore (run db [ "doubled@p($x, $y) :- n@p($x), $y := $x * 2" ]);
        check_bool "6"
          (List.equal Tuple.equal
             [ Tuple.of_list [ Value.Int 3; Value.Int 6 ] ]
             (rel_facts db "doubled")));
    tc "builtin type errors drop the valuation and report" (fun () ->
        let db = db_of {|int v@p(x); n@p(1); n@p("two");|} in
        let r = run db [ "v@p($y) :- n@p($x), $y := $x + 1" ] in
        check_int "derived" 1 (List.length (rel_facts db "v"));
        check_int "errors" 1 (List.length r.Fixpoint.errors));
    tc "relation variables enumerate local relations" (fun () ->
        let db =
          db_of
            {|int all@p(r, x); names@p("u"); names@p("v"); u@p(1); v@p(2); v@p(3);|}
        in
        ignore (run db [ "all@p($r, $x) :- names@p($r), $r@p($x)" ]);
        check_int "all" 3 (List.length (rel_facts db "all")));
    tc "variable relation name in the head" (fun () ->
        let db = db_of {|routes@p("left", 1); routes@p("right", 2);|} in
        let r = run db [ "$r@p($x) :- routes@p($r, $x)" ] in
        (* heads are extensional -> induced *)
        check_int "induced" 2 (List.length r.Fixpoint.induced);
        check_bool "left"
          (List.exists (fun (f : Fact.t) -> f.Fact.rel = "left") r.Fixpoint.induced));
    tc "peer variable bound to a non-name reports an error" (fun () ->
        let db = db_of "sel@p(42);" in
        let r = run db [ "v@q($x) :- sel@p($a), data@$a($x)" ] in
        check_int "no suspension" 0 (List.length r.Fixpoint.suspensions);
        check_bool "error"
          (List.exists
             (function Runtime_error.Not_a_name _ -> true | _ -> false)
             r.Fixpoint.errors));
    tc "remote negation reports an error" (fun () ->
        let db = db_of "a@p(1);" in
        let r = run db [ "v@p($x) :- a@p($x), not b@q($x)" ] in
        check_bool "error"
          (List.exists
             (function Runtime_error.Remote_negation _ -> true | _ -> false)
             r.Fixpoint.errors));
    tc "arity mismatch in a body atom matches nothing" (fun () ->
        let db = db_of "a@p(1, 2); int v@p(x);" in
        ignore (run db [ "v@p($x) :- a@p($x)" ]);
        check_int "v empty" 0 (List.length (rel_facts db "v")));
    tc "suspensions deduplicate" (fun () ->
        let db = db_of {|sel@p("q"); sel2@p("q");|} in
        let r =
          run db
            [ "v@p($x) :- sel@p($a), data@$a($x)";
              "v@p($x) :- sel2@p($a), data@$a($x)" ]
        in
        (* Both rules produce the same residual for q. *)
        check_int "one" 1 (List.length r.Fixpoint.suspensions));
    tc "nonlinear rule (same relation twice)" (fun () ->
        let db = db_of "int tc2@p(x, y); edge@p(1,2); edge@p(2,3); edge@p(3,4);" in
        ignore
          (run db
             [ "tc2@p($x,$y) :- edge@p($x,$y)";
               "tc2@p($x,$z) :- tc2@p($x,$y), tc2@p($y,$z)" ]);
        check_int "tc2" 6 (List.length (rel_facts db "tc2")));
    tc "repeated variables in one atom" (fun () ->
        let db = db_of "int loop@p(x); e@p(1,1); e@p(1,2); e@p(3,3);" in
        ignore (run db [ "loop@p($x) :- e@p($x, $x)" ]);
        check_int "loops" 2 (List.length (rel_facts db "loop")));
    tc "mutually recursive views in one stratum" (fun () ->
        let db = db_of "int even@p(x); int odd@p(x); zero@p(0); succ@p(0,1); succ@p(1,2); succ@p(2,3);" in
        ignore
          (run db
             [ "even@p($x) :- zero@p($x)";
               "odd@p($y) :- even@p($x), succ@p($x,$y)";
               "even@p($y) :- odd@p($x), succ@p($x,$y)" ]);
        check_int "evens" 2 (List.length (rel_facts db "even"));
        check_int "odds" 2 (List.length (rel_facts db "odd")));
    tc "assignment feeds a later join key" (fun () ->
        let db = db_of "int v@p(x); n@p(1); n@p(2); m@p(2); m@p(4);" in
        ignore (run db [ "v@p($x) :- n@p($x), $y := $x * 2, m@p($y)" ]);
        check_int "both survive" 2 (List.length (rel_facts db "v")));
    tc "comparison between two computed expressions" (fun () ->
        let db = db_of "int v@p(x, y); n@p(2, 3); n@p(5, 1);" in
        ignore (run db [ "v@p($a, $b) :- n@p($a, $b), $a + 1 > $b * 1" ]);
        check_int "one row" 1 (List.length (rel_facts db "v")));
    tc "negation over a value produced by assignment" (fun () ->
        let db = db_of "int v@p(x); n@p(1); n@p(2); blocked@p(4);" in
        ignore
          (run db [ "v@p($x) :- n@p($x), $y := $x * 2, not blocked@p($y)" ]);
        (* x=2 gives y=4, blocked *)
        check_int "one" 1 (List.length (rel_facts db "v")));
    tc "seminaive recursion through a relation variable" (fun () ->
        (* The recursive atom's relation name comes from data. *)
        let db =
          db_of
            {|int tcv@p(x, y); names@p("edge"); names@p("tcv");
              edge@p(1,2); edge@p(2,3); edge@p(3,4);|}
        in
        ignore
          (run db
             [ "tcv@p($x,$y) :- edge@p($x,$y)";
               "tcv@p($x,$z) :- names@p($r), $r@p($x,$y), edge@p($y,$z)" ]);
        check_int "closure" 6 (List.length (rel_facts db "tcv")));
    tc "iterations grow with recursion depth" (fun () ->
        let r1 = run (chain_db 6) tc_rules in
        let r2 = run (chain_db 24) tc_rules in
        check_bool "depth-driven" (r2.Fixpoint.iterations > r1.Fixpoint.iterations));
    tc "one fact derived by many rules is deduced once" (fun () ->
        let db = db_of "int v@p(x); a@p(1); b@p(1);" in
        let r = run db [ "v@p($x) :- a@p($x)"; "v@p($x) :- b@p($x)" ] in
        check_int "deduced once" 1 (List.length r.Fixpoint.deduced);
        check_bool "but derived twice" (r.Fixpoint.derivations >= 2));
    tc "builtin-only body derives a constant head" (fun () ->
        let db = db_of "int flag@p(x);" in
        ignore (run db [ "flag@p(1) :- 1 == 1"; "flag@p(2) :- 1 > 2" ]);
        check_int "only the true one" 1 (List.length (rel_facts db "flag")));
    tc "runtime error reporting caps at 1000" (fun () ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "int v@p(x);\n";
        for i = 1 to 1500 do
          Buffer.add_string buf (Printf.sprintf "n@p(\"s%d\");\n" i)
        done;
        let db = db_of (Buffer.contents buf) in
        let r = run db [ "v@p($y) :- n@p($x), $y := $x * 2" ] in
        check_int "capped" 1000 (List.length r.Fixpoint.errors));
    tc "extensional facts join with same-stage view facts" (fun () ->
        let db = db_of "int v@p(x); int w@p(x); base@p(1); keys@p(1);" in
        ignore
          (run db [ "v@p($x) :- base@p($x)"; "w@p($x) :- v@p($x), keys@p($x)" ]);
        check_int "joined" 1 (List.length (rel_facts db "w")));
  ]
