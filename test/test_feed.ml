(* Wefeed: the second rule-built application. *)
module Feed = Wdl_feed.Feed

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let trio () =
  let t = Feed.create () in
  List.iter (fun u -> ignore (Feed.add_user t u)) [ "joe"; "alice"; "bob" ];
  t

let suite =
  [
    tc "recent window and trending aggregate follow the timeline" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"db post" ~topic:"databases";
        Feed.post t ~author:"alice" ~id:2 ~text:"cat pic" ~topic:"cats";
        Feed.post t ~author:"alice" ~id:3 ~text:"more cats" ~topic:"cats";
        ignore (ok' (Feed.run t));
        check_int "recent mirrors the fresh timeline" 3
          (List.length (Feed.recent t ~user:"joe"));
        check_bool "trending counts per topic"
          (Feed.trending t ~user:"joe"
          = [ ("cats", 2); ("databases", 1) ]));
    tc "hot topics rank the author's own posting activity" (fun () ->
        let t = trio () in
        Feed.post t ~author:"alice" ~id:1 ~text:"a" ~topic:"cats";
        Feed.post t ~author:"alice" ~id:2 ~text:"b" ~topic:"cats";
        Feed.post t ~author:"alice" ~id:3 ~text:"c" ~topic:"databases";
        ignore (ok' (Feed.run t));
        check_bool "ranked heaviest first"
          (Feed.hot_topics t ~user:"alice"
          = [ ("cats", 2); ("databases", 1) ]));
    tc "posts of followed users reach the timeline" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"hi" ~topic:"misc";
        Feed.post t ~author:"bob" ~id:2 ~text:"ignored" ~topic:"misc";
        ignore (ok' (Feed.run t));
        match Feed.timeline t ~user:"joe" with
        | [ e ] -> Alcotest.check Alcotest.string "author" "alice" e.Feed.author
        | l -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length l)));
    tc "new posts stream in; unfollowing retracts" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"one" ~topic:"m";
        ignore (ok' (Feed.run t));
        Feed.post t ~author:"alice" ~id:2 ~text:"two" ~topic:"m";
        ignore (ok' (Feed.run t));
        check_int "streams" 2 (List.length (Feed.timeline t ~user:"joe"));
        Feed.unfollow t ~user:"joe" ~whom:"alice";
        ignore (ok' (Feed.run t));
        check_int "retracted" 0 (List.length (Feed.timeline t ~user:"joe")));
    tc "muting filters locally without touching the author" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.follow t ~user:"joe" ~whom:"bob";
        Feed.post t ~author:"alice" ~id:1 ~text:"a" ~topic:"m";
        Feed.post t ~author:"bob" ~id:2 ~text:"b" ~topic:"m";
        Feed.mute t ~user:"joe" ~whom:"bob";
        ignore (ok' (Feed.run t));
        check_int "only alice" 1 (List.length (Feed.timeline t ~user:"joe"));
        Feed.unmute t ~user:"joe" ~whom:"bob";
        ignore (ok' (Feed.run t));
        check_int "both after unmute" 2 (List.length (Feed.timeline t ~user:"joe")));
    tc "topic subscription narrows the topicline" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"db post" ~topic:"databases";
        Feed.post t ~author:"alice" ~id:2 ~text:"cat pic" ~topic:"cats";
        Feed.subscribe t ~user:"joe" ~topic:"databases";
        ignore (ok' (Feed.run t));
        check_int "timeline has both" 2 (List.length (Feed.timeline t ~user:"joe"));
        match Feed.topicline t ~user:"joe" with
        | [ e ] -> Alcotest.check Alcotest.string "topic" "databases" e.Feed.topic
        | l -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length l)));
    tc "digest counts per author (aggregation)" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.follow t ~user:"joe" ~whom:"bob";
        Feed.post t ~author:"alice" ~id:1 ~text:"a" ~topic:"m";
        Feed.post t ~author:"alice" ~id:2 ~text:"b" ~topic:"m";
        Feed.post t ~author:"bob" ~id:3 ~text:"c" ~topic:"m";
        ignore (ok' (Feed.run t));
        check_bool "counts"
          (Feed.digest t ~user:"joe" = [ ("alice", 2); ("bob", 1) ]));
    tc "friend-of-friend suggestions exclude self and existing follows"
      (fun () ->
        let t = trio () in
        ignore (Feed.add_user t "carol");
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.follow t ~user:"alice" ~whom:"bob";
        Feed.follow t ~user:"alice" ~whom:"carol";
        Feed.follow t ~user:"alice" ~whom:"joe";  (* fof contains joe himself *)
        Feed.follow t ~user:"joe" ~whom:"bob";    (* already followed *)
        ignore (ok' (Feed.run t));
        check_bool "only carol" (Feed.suggestions t ~user:"joe" = [ "carol" ]));
    tc "resharing republishes to one's own followers" (fun () ->
        let t = trio () in
        (* bob -> joe -> alice: bob doesn't follow alice directly. *)
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.follow t ~user:"bob" ~whom:"joe";
        Feed.post t ~author:"alice" ~id:7 ~text:"worth sharing" ~topic:"m";
        ignore (ok' (Feed.run t));
        check_int "bob sees nothing yet" 0 (List.length (Feed.timeline t ~user:"bob"));
        Feed.reshare t ~user:"joe" ~id:7;
        ignore (ok' (Feed.run t));
        (match Feed.timeline t ~user:"bob" with
        | [ e ] ->
          Alcotest.check Alcotest.string "original author kept" "alice"
            e.Feed.author
        | l -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length l)));
        check_bool "joe's timeline unchanged by his own reshare"
          (List.length (Feed.timeline t ~user:"joe") = 1));
    tc "users can join a live network" (fun () ->
        let t = trio () in
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"a" ~topic:"m";
        ignore (ok' (Feed.run t));
        ignore (Feed.add_user t "dave");
        Feed.follow t ~user:"dave" ~whom:"alice";
        ignore (ok' (Feed.run t));
        check_int "late joiner catches up" 1
          (List.length (Feed.timeline t ~user:"dave")));
    tc "the whole network converges over a lossy-ish simulated WAN" (fun () ->
        let transport =
          Wdl_net.Simnet.create ~sizer:Webdamlog.Message.size ~seed:6
            ~base_latency:2.0 ~jitter:1.0 ~duplicate:0.3 ()
        in
        let t = Feed.create ~transport () in
        List.iter (fun u -> ignore (Feed.add_user t u)) [ "joe"; "alice"; "bob" ];
        Feed.follow t ~user:"joe" ~whom:"alice";
        Feed.follow t ~user:"bob" ~whom:"alice";
        Feed.post t ~author:"alice" ~id:1 ~text:"a" ~topic:"m";
        ignore (ok' (Feed.run t));
        check_int "joe" 1 (List.length (Feed.timeline t ~user:"joe"));
        check_int "bob" 1 (List.length (Feed.timeline t ~user:"bob")));
  ]
