(* Knowledge-flow analysis (lib/analysis/flow.ml) and its runtime
   oracle: unit tests for the graph queries, fires/silent programs for
   each flow diagnostic (WDL060-065), the wire encoding of origin
   metadata, and a QCheck differential — the static per-rule send sets
   must over-approximate every (origin_rule, dst_peer) delivery a live
   multi-peer run produces, including under mid-run rule and
   delegation churn. *)
open Wdl_syntax
open Wdl_analysis
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let parse_file (file, src) =
  match Parser.program_located ~file src with
  | Ok p -> (file, p)
  | Error (msg, _) -> Alcotest.failf "parse %s: %s" file msg

let flow_of files = Analysis.flow_of_system (List.map parse_file files)

let sys_codes files =
  List.map
    (fun (d : Diagnostic.t) -> d.Diagnostic.code)
    (Analysis.check_system (List.map parse_file files))

let file_codes src =
  match Parser.program_located ~file:"t.wdl" src with
  | Ok p ->
    List.map
      (fun (d : Diagnostic.t) -> d.Diagnostic.code)
      (Analysis.check_located p)
  | Error (msg, _) -> Alcotest.failf "parse: %s" msg

let assert_fires name code codes =
  if not (List.mem code codes) then
    Alcotest.failf "%s: expected %s among [%s]" name code
      (String.concat "; " codes)

let assert_silent name code codes =
  if List.mem code codes then
    Alcotest.failf "%s: unexpected %s in [%s]" name code
      (String.concat "; " codes)

(* ------------------------------------------------------------------ *)
(* Graph queries                                                      *)
(* ------------------------------------------------------------------ *)

let chain_src =
  "ext s@p(x);\nint t@p(x);\ns@p(1);\nt@p($x) :- s@p($x);\nu@q($x) :- \
   t@p($x);"

let graph_suite =
  [
    tc "reachability follows rule chains across peers" (fun () ->
        let fl = flow_of [ ("a.wdl", chain_src) ] in
        let r =
          Flow.reachable fl { Flow.n_rel = Some "s"; n_peer = Flow.Named "p" }
        in
        let named, any = Flow.reach_peers r in
        check_bool "q reached" (List.mem "q" named);
        check_bool "no any" (not any));
    tc "witness is the two-rule chain" (fun () ->
        let fl = flow_of [ ("a.wdl", chain_src) ] in
        let r =
          Flow.reachable fl { Flow.n_rel = Some "s"; n_peer = Flow.Named "p" }
        in
        match Flow.witness r ~peer:(Flow.Named "q") with
        | None -> Alcotest.fail "no witness path to q"
        | Some path ->
          Alcotest.(check (list string))
            "path" [ "p#1"; "p#2" ] (Flow.path_ids path));
    tc "rule_sends: head peer plus delegation hops" (fun () ->
        let fl =
          flow_of
            [ ( "a.wdl",
                "ext r@p(x);\nint pulled@p(x);\npulled@p($x) :- data@q($x), \
                 r@p($x);" ) ]
        in
        let named, any = Flow.rule_sends fl "p#1" in
        check_bool "hop target q" (List.mem "q" named);
        check_bool "head peer p" (List.mem "p" named);
        check_bool "bounded" (not any));
    tc "rule_sends: a peer variable is the top peer" (fun () ->
        let fl =
          flow_of
            [ ( "a.wdl",
                "ext sel@p(a);\nint dyn@p(x);\ndyn@p($x) :- sel@p($a), \
                 data@$a($x);" ) ]
        in
        let _, any = Flow.rule_sends fl "p#1" in
        check_bool "unbounded" any);
    tc "rule_sends: unknown id answers empty" (fun () ->
        let fl = flow_of [ ("a.wdl", chain_src) ] in
        Alcotest.(check (pair (list string) bool))
          "unknown" ([], false)
          (Flow.rule_sends fl "p#99"));
  ]

(* ------------------------------------------------------------------ *)
(* Fires / silent per flow diagnostic                                 *)
(* ------------------------------------------------------------------ *)

let diag_suite =
  [
    tc "WDL060 fires on a two-rule chain to a foreign peer" (fun () ->
        assert_fires "chain" "WDL060"
          (file_codes
             "ext s@p(x);\nint t@p(x);\ns@p(1);\nt@p($x) :- s@p($x);\n\
              u@q($x) :- t@p($x);"));
    tc "WDL060 silent on a direct single-rule send" (fun () ->
        assert_silent "direct" "WDL060"
          (file_codes "ext s@p(x);\ns@p(1);\nu@q($x) :- s@p($x);"));
    tc "WDL061 fires when the head refeeds the delegation binder"
      (fun () ->
        assert_fires "amplification" "WDL061"
          (file_codes
             "ext contacts@p(a);\ncontacts@p(\"q\");\ncontacts@p($y) :- \
              contacts@p($x), book@$x($y);"));
    tc "WDL061 silent when the head feeds an unrelated relation" (fun () ->
        assert_silent "no cycle" "WDL061"
          (file_codes
             "ext contacts@p(a);\nint found@p(a);\ncontacts@p(\"q\");\n\
              found@p($y) :- contacts@p($x), book@$x($y);"));
    tc "WDL062 fires when invented names feed the inventing body"
      (fun () ->
        assert_fires "invention" "WDL062"
          (file_codes
             "ext gen@p(r, x);\ngen@p(\"a\", 1);\n$r@p($x) :- gen@p($r, \
              $x);"));
    tc "WDL062 silent when the invented head cannot reach its body"
      (fun () ->
        assert_silent "bounded invention" "WDL062"
          (file_codes
             "ext gen@p(r, x);\ngen@p(\"a\", 1);\n$r@q($x) :- gen@p($r, \
              $x);"));
    tc "WDL063 fires on a post-hop write into a foreign ext relation"
      (fun () ->
        assert_fires "foreign write" "WDL063"
          (file_codes
             "ext src@p(x);\next data@q(x);\next log@q(x);\nsrc@p(1);\n\
              log@q($x) :- src@p($x), data@q($x);"));
    tc "WDL063 silent when the foreign head is intensional" (fun () ->
        assert_silent "view write" "WDL063"
          (file_codes
             "ext src@p(x);\next data@q(x);\nint log@q(x);\nsrc@p(1);\n\
              log@q($x) :- src@p($x), data@q($x);"));
    tc "WDL064 fires when flow leaves the checked file set" (fun () ->
        assert_fires "outside peer" "WDL064"
          (sys_codes
             [
               ( "hub.wdl",
                 "ext data@hub(x);\ndata@hub(1);\nout@other($x) :- \
                  data@hub($x);" );
               ("bob.wdl", "ext posts@bob(x);\nposts@bob(2);");
             ]));
    tc "WDL064 silent when the destination's file is included" (fun () ->
        assert_silent "covered peer" "WDL064"
          (sys_codes
             [
               ( "hub.wdl",
                 "ext data@hub(x);\ndata@hub(1);\nout@other($x) :- \
                  data@hub($x);" );
               ("other.wdl", "int out@other(x);");
             ]));
    tc "WDL065 fires on a cross-file redeclaration" (fun () ->
        assert_fires "shadowing" "WDL065"
          (sys_codes
             [
               ("a.wdl", "ext data@alice(x);\ndata@alice(1);");
               ("b.wdl", "ext data@alice(x);\ndata@alice(2);");
             ]));
    tc "WDL065 silent within a single file" (fun () ->
        assert_silent "one owner" "WDL065"
          (sys_codes
             [
               ("a.wdl", "ext data@alice(x);\ndata@alice(1);");
               ("b.wdl", "ext posts@bob(x);\nposts@bob(2);");
             ]));
  ]

(* ------------------------------------------------------------------ *)
(* Origin metadata: wire encoding and the live tagging pin            *)
(* ------------------------------------------------------------------ *)

let parse_rule src =
  match Parser.rule src with Ok r -> r | Error e -> Alcotest.fail e

let msg_equal (a : Message.t) (b : Message.t) =
  a.Message.src = b.Message.src
  && a.Message.dst = b.Message.dst
  && a.Message.stage = b.Message.stage
  && Option.equal (List.equal Fact.equal) a.Message.facts b.Message.facts
  && List.equal Rule.equal a.Message.installs b.Message.installs
  && List.equal Rule.equal a.Message.retracts b.Message.retracts
  && a.Message.fact_origins = b.Message.fact_origins
  && a.Message.install_origins = b.Message.install_origins

let wire_suite =
  [
    tc "wire round-trips origin metadata" (fun () ->
        let m =
          Message.make ~src:"p" ~dst:"q" ~stage:3
            ~facts:(Some [ Fact.make ~rel:"out" ~peer:"q" [ Value.Int 1 ] ])
            ~installs:[ parse_rule "mix@p($x) :- data@q($x);" ]
            ~fact_origins:[ "p#1"; "p#2" ] ~install_origins:[ "p#3" ] ()
        in
        match Wire.decode (Wire.encode m) with
        | Ok m' -> check_bool "round-trip" (msg_equal m m')
        | Error e -> Alcotest.fail e);
    tc "empty origins stay off the wire" (fun () ->
        let m =
          Message.make ~src:"p" ~dst:"q" ~stage:1
            ~facts:(Some [ Fact.make ~rel:"out" ~peer:"q" [ Value.Int 1 ] ])
            ()
        in
        let frame = Wire.encode m in
        check_bool "no origins relation"
          (not
             (String.split_on_char '\n' frame
             |> List.exists (fun l ->
                    String.length l >= 7 && String.sub l 0 7 = "origins")));
        match Wire.decode frame with
        | Ok m' ->
          check_bool "round-trip" (msg_equal m m');
          Alcotest.(check (list string)) "no fact origins" [] m'.Message.fact_origins
        | Error e -> Alcotest.fail e);
    tc "diagnostics carry a top-level file field in JSON" (fun () ->
        match
          Parser.program_located ~file:"t.wdl" "ext spare@local(a);"
        with
        | Error _ -> Alcotest.fail "parse"
        | Ok p -> (
          match Analysis.check_located p with
          | [] -> Alcotest.fail "expected a WDL021 diagnostic"
          | d :: _ ->
            let json = Diagnostic.to_json d in
            check_bool "file field"
              (contains json {|"file":"t.wdl"|})));
  ]

(* The deterministic pin: a two-peer run tags facts and installs with
   the producing rule's id, the receiver resolves a delegated rule to
   its origin id, and Peer.flow covers the observed deliveries. *)
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let tagging_pin () =
  let p = Peer.create "p" in
  ok'
    (Peer.load_string p
       "ext r@p(x);\nint mix@p(x);\nr@p(1);\nout@q($x) :- r@p($x);\n\
        mix@p($x) :- data@q($x);");
  let msgs = Peer.stage p in
  let m =
    match msgs with
    | [ m ] -> m
    | _ -> Alcotest.failf "expected one message, got %d" (List.length msgs)
  in
  Alcotest.(check string) "dst" "q" m.Message.dst;
  Alcotest.(check (list string)) "fact origins" [ "p#1" ] m.Message.fact_origins;
  Alcotest.(check (list string))
    "install origins" [ "p#2" ] m.Message.install_origins;
  Alcotest.(check int) "one install" 1 (List.length m.Message.installs);
  (* The sender's flow covers both deliveries. *)
  let flp = Peer.flow p in
  let named1, any1 = Flow.rule_sends flp "p#1" in
  check_bool "p#1 covers q" (any1 || List.mem "q" named1);
  let named2, any2 = Flow.rule_sends flp "p#2" in
  check_bool "p#2 covers q" (any2 || List.mem "q" named2);
  (* The receiver installs the delegation under its origin id. *)
  let q = Peer.create "q" in
  ok' (Peer.load_string q "ext data@q(x);");
  Peer.receive q m;
  ignore (Peer.stage q);
  (match Peer.delegated_rules q with
  | [ ("p", r) ] ->
    Alcotest.(check (option string)) "origin id" (Some "p#2") (Peer.rule_id q r)
  | l -> Alcotest.failf "expected one delegation from p, got %d" (List.length l));
  (* Evaluating the delegated rule tags its sends with the origin id,
     and the receiver's own flow graph covers them. *)
  ok' (Peer.insert q (Fact.make ~rel:"data" ~peer:"q" [ Value.Int 7 ]));
  let back =
    List.filter (fun (m : Message.t) -> m.Message.dst = "p") (Peer.stage q)
  in
  match back with
  | [ m ] ->
    Alcotest.(check (list string))
      "delegated fact origins" [ "p#2" ] m.Message.fact_origins;
    let named, any = Flow.rule_sends (Peer.flow q) "p#2" in
    check_bool "q's flow covers p" (any || List.mem "p" named)
  | _ -> Alcotest.failf "expected one message back to p, got %d" (List.length back)

(* ------------------------------------------------------------------ *)
(* The QCheck oracle                                                  *)
(* ------------------------------------------------------------------ *)

(* Random multi-peer systems driven stage by stage. Before and after
   every stage the staged peer's flow graph is snapshotted; every
   origin id a message carries must name a rule whose static send set
   (in some snapshot taken so far) covers the message's destination.
   Snapshots accumulate because fact batches — and therefore their
   origin sets — are cumulative across stages, while positional rule
   ids shift under rule removal. *)

type op =
  | Add_rule of int * int  (** owner peer, template index *)
  | Drop_rule of int * int  (** owner peer, index into its current rules *)
  | Insert of int * string * int
  | Remove of int * string * int
  | Select of int * int  (** sel\@owner points at the second peer *)

type fspec = {
  n_peers : int;
  rounds : int;
  init_facts : (int * string * int) list;
  init_sels : (int * int) list;
  init_rules : (int * int) list;  (** owner, template *)
  ops : (int * op) list;  (** 1-based round at which the op applies *)
}

let peer_name i = Printf.sprintf "p%d" i

(* Each template's rules execute at [p] and may reference [q]; heads
   are constant so the owner is the head peer's program. *)
let templates =
  [|
    (fun p _ -> Printf.sprintf "v@%s($x) :- r@%s($x);" p p);
    (fun p q -> Printf.sprintf "out@%s($x) :- r@%s($x);" q p);
    (fun p q -> Printf.sprintf "pulled@%s($x) :- data@%s($x);" p q);
    (fun p _ -> Printf.sprintf "dyn@%s($x) :- sel@%s($a), data@$a($x);" p p);
    (fun p _ -> Printf.sprintf "w@%s($x) :- v@%s($x);" p p);
    (fun p q -> Printf.sprintf "relay@%s($x) :- data@%s($x), r@%s($x);" q q p);
  |]

let fspec_gen =
  QCheck.Gen.(
    let* n_peers = int_range 2 3 in
    let any_peer = int_range 0 (n_peers - 1) in
    let* rounds = int_range 3 6 in
    let template = int_range 0 (Array.length templates - 1) in
    let fact =
      let* p = any_peer in
      let* rel = oneofl [ "r"; "data" ] in
      let* v = int_range 0 4 in
      return (p, rel, v)
    in
    let* init_facts = list_size (int_range 2 8) fact in
    let* init_sels = list_size (int_range 0 2) (pair any_peer any_peer) in
    let* init_rules = list_size (int_range 1 5) (pair any_peer template) in
    let op =
      let* round = int_range 1 rounds in
      let* o =
        oneof
          [
            (let* p = any_peer in
             let* t = template in
             return (Add_rule (p, t)));
            (let* p = any_peer in
             let* i = int_range 0 5 in
             return (Drop_rule (p, i)));
            (let* p, rel, v = fact in
             return (Insert (p, rel, v)));
            (let* p, rel, v = fact in
             return (Remove (p, rel, v)));
            (let* p = any_peer in
             let* q = any_peer in
             return (Select (p, q)));
          ]
      in
      return (round, o)
    in
    let* ops = list_size (int_range 0 6) op in
    return { n_peers; rounds; init_facts; init_sels; init_rules; ops })

let op_print = function
  | Add_rule (p, t) -> Printf.sprintf "add(p%d, t%d)" p t
  | Drop_rule (p, i) -> Printf.sprintf "drop(p%d, %d)" p i
  | Insert (p, rel, v) -> Printf.sprintf "ins(%s@p%d=%d)" rel p v
  | Remove (p, rel, v) -> Printf.sprintf "del(%s@p%d=%d)" rel p v
  | Select (p, q) -> Printf.sprintf "sel(p%d->p%d)" p q

let fspec_print s =
  Printf.sprintf "peers=%d rounds=%d facts=[%s] sels=[%s] rules=[%s] ops=[%s]"
    s.n_peers s.rounds
    (String.concat "; "
       (List.map
          (fun (p, rel, v) -> Printf.sprintf "%s@p%d=%d" rel p v)
          s.init_facts))
    (String.concat "; "
       (List.map (fun (p, q) -> Printf.sprintf "p%d->p%d" p q) s.init_sels))
    (String.concat "; "
       (List.map
          (fun (p, t) -> Printf.sprintf "p%d:t%d" p t)
          s.init_rules))
    (String.concat "; "
       (List.map (fun (r, o) -> Printf.sprintf "@%d %s" r (op_print o)) s.ops))

let fspec_arb = QCheck.make ~print:fspec_print fspec_gen

let decls name =
  String.concat "\n"
    (List.map
       (fun rel -> Printf.sprintf "int %s@%s(x);" rel name)
       [ "v"; "w"; "pulled"; "dyn"; "out"; "relay" ])

let rule_of spec (owner, t) =
  let q = (owner + 1) mod spec.n_peers in
  parse_rule (templates.(t) (peer_name owner) (peer_name q))

let apply_op spec peers = function
  | Add_rule (p, t) -> ignore (Peer.add_rule peers.(p) (rule_of spec (p, t)))
  | Drop_rule (p, i) -> (
    match Peer.rules peers.(p) with
    | [] -> ()
    | rs -> ignore (Peer.remove_rule peers.(p) (List.nth rs (i mod List.length rs))))
  | Insert (p, rel, v) ->
    ignore (Peer.insert peers.(p) (Fact.make ~rel ~peer:(peer_name p) [ Value.Int v ]))
  | Remove (p, rel, v) ->
    ignore (Peer.delete peers.(p) (Fact.make ~rel ~peer:(peer_name p) [ Value.Int v ]))
  | Select (p, q) ->
    ignore
      (Peer.insert peers.(p)
         (Fact.make ~rel:"sel" ~peer:(peer_name p)
            [ Value.String (peer_name q) ]))

(* [true] iff some snapshot knows a rule [id] whose send set covers
   [dst]. Ids ending in "#?" (origin metadata lost, e.g. after a
   restore) are outside the oracle's contract. *)
let covered snaps id dst =
  (String.length id >= 2 && String.sub id (String.length id - 2) 2 = "#?")
  || List.exists
       (fun fl ->
         let named, any = Flow.rule_sends fl id in
         any || List.mem dst named)
       snaps

let oracle_run spec =
  let peers =
    Array.init spec.n_peers (fun i -> Peer.create (peer_name i))
  in
  Array.iteri
    (fun i p ->
      match Peer.load_string p (decls (peer_name i)) with
      | Ok () -> ()
      | Error e -> failwith e)
    peers;
  List.iter (fun (p, rel, v) -> apply_op spec peers (Insert (p, rel, v))) spec.init_facts;
  List.iter (fun (p, q) -> apply_op spec peers (Select (p, q))) spec.init_sels;
  List.iter (fun r -> ignore (Peer.add_rule peers.(fst r) (rule_of spec r))) spec.init_rules;
  let snaps = ref [] in
  let failure = ref None in
  for round = 1 to spec.rounds do
    List.iter
      (fun (r, o) -> if r = round then apply_op spec peers o)
      spec.ops;
    let outbound = ref [] in
    Array.iter
      (fun p ->
        snaps := Peer.flow p :: !snaps;
        let msgs = Peer.stage p in
        snaps := Peer.flow p :: !snaps;
        List.iter
          (fun (m : Message.t) ->
            if List.length m.Message.install_origins
               <> List.length m.Message.installs
            then failure := Some (Printf.sprintf "unaligned install origins to %s" m.Message.dst);
            List.iter
              (fun id ->
                if not (covered !snaps id m.Message.dst) then
                  failure :=
                    Some
                      (Printf.sprintf "delivery (%s -> %s) not covered" id
                         m.Message.dst))
              (m.Message.fact_origins @ m.Message.install_origins))
          msgs;
        outbound := msgs @ !outbound)
      peers;
    List.iter
      (fun (m : Message.t) ->
        Array.iter
          (fun p -> if Peer.name p = m.Message.dst then Peer.receive p m)
          peers)
      !outbound
  done;
  match !failure with
  | None -> true
  | Some msg -> QCheck.Test.fail_report msg

let oracle_tests =
  [
    QCheck.Test.make ~count:500
      ~name:"static send sets over-approximate observed deliveries" fspec_arb
      oracle_run;
  ]

let suite =
  graph_suite @ diag_suite @ wire_suite
  @ [ tc "runtime origin tagging pin" tagging_pin ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) oracle_tests
