(* Write-ahead journal + checkpoint recovery (Persist). *)
open Wdl_syntax
open Webdamlog
module Journal = Wdl_store.Journal

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "wdl_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Sys.mkdir dir 0o755;
    dir

let fact i = Fact.make ~rel:"m" ~peer:"p" [ Value.Int i ]

let suite =
  [
    tc "journal: append and replay round-trip" (fun () ->
        let dir = temp_dir () in
        let file = Filename.concat dir "j.wal" in
        let j = Journal.open_ file in
        let entries =
          [ Journal.Declare (Decl.make ~kind:Decl.Extensional ~rel:"m" ~peer:"p" [ "x" ]);
            Journal.Insert (fact 1);
            Journal.Insert (Fact.make ~rel:"m" ~peer:"p" [ Value.String "é\"x" ]);
            Journal.Delete (fact 1) ]
        in
        List.iter (Journal.append j) entries;
        Journal.close j;
        let replayed = ok' (Journal.replay file) in
        check_bool "equal" (List.equal Journal.entry_equal entries replayed));
    tc "journal: long statements never wrap across lines" (fun () ->
        (* Break hints outside a box split at max-indent; the one-line
           renderer must defeat that (regression). *)
        let dir = temp_dir () in
        let file = Filename.concat dir "long.wal" in
        let j = Journal.open_ file in
        let long_fact =
          Fact.make ~rel:"pictures" ~peer:"p"
            [ Value.Int 1; Value.String (String.make 500 'x');
              Value.String (String.make 300 'y'); Value.String "Émilien" ]
        in
        let wide_decl =
          Decl.make ~kind:Decl.Extensional ~rel:"widerelationname" ~peer:"p"
            (List.init 20 (Printf.sprintf "columnnumber%d"))
        in
        Journal.append j (Journal.Declare wide_decl);
        Journal.append j (Journal.Insert long_fact);
        Journal.close j;
        let replayed = ok' (Journal.replay file) in
        check_int "two entries" 2 (List.length replayed);
        check_bool "fact intact"
          (List.exists (Journal.entry_equal (Journal.Insert long_fact)) replayed));
    tc "journal: missing file is empty" (fun () ->
        check_bool "empty" (Journal.replay "/nonexistent/journal.wal" = Ok []));
    tc "journal: torn final line is tolerated" (fun () ->
        let dir = temp_dir () in
        let file = Filename.concat dir "torn.wal" in
        let j = Journal.open_ file in
        Journal.append j (Journal.Insert (fact 1));
        Journal.close j;
        let oc = open_out_gen [ Open_append ] 0o644 file in
        output_string oc "+ m@p(2";  (* crash mid-write: no ';', no newline *)
        close_out oc;
        let replayed = ok' (Journal.replay file) in
        check_int "only the complete entry" 1 (List.length replayed));
    tc "journal: torn line followed by trailing blank lines is tolerated"
      (fun () ->
        (* A crash can tear the line AND leave a stray newline behind;
           this used to return a spurious fatal Error. *)
        let dir = temp_dir () in
        let file = Filename.concat dir "torn_blank.wal" in
        let oc = open_out_bin file in
        output_string oc "+ m@p(1);\n+ m@p(2\n\n";
        close_out oc;
        let replayed = ok' (Journal.replay file) in
        check_int "only the complete entry" 1 (List.length replayed));
    tc "journal: repair cuts the torn tail so later appends replay cleanly"
      (fun () ->
        let dir = temp_dir () in
        let p = Peer.create "p" in
        Persist.attach p ~dir;
        ok' (Peer.load_string p "ext m@p(x); m@p(1);");
        (* Crash mid-append: a partial line with no ';' and no newline.
           Without repair, recovery reopened with Open_append and the
           next entry was concatenated onto this line — losing both. *)
        let file = Filename.concat dir "journal.wal" in
        let oc = open_out_gen [ Open_append ] 0o644 file in
        output_string oc "+ m@p(2";
        close_out oc;
        let p' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_int "torn entry lost, complete one kept" 1
          (List.length (Peer.query p' "m"));
        ok' (Peer.insert p' (fact 3));
        let p'' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_int "clean replay sees old and new" 2
          (List.length (Peer.query p'' "m"));
        check_bool "post-recovery append survived"
          (List.exists (Fact.equal (fact 3)) (Peer.query p'' "m")));
    tc "journal: corruption in the middle is an error" (fun () ->
        let dir = temp_dir () in
        let file = Filename.concat dir "bad.wal" in
        let oc = open_out_bin file in
        output_string oc "+ m@p(1);\nGARBAGE\n+ m@p(2);\n";
        close_out oc;
        check_bool "error" (Result.is_error (Journal.replay file)));
    tc "journal: truncate empties the log" (fun () ->
        let dir = temp_dir () in
        let file = Filename.concat dir "t.wal" in
        let j = Journal.open_ file in
        Journal.append j (Journal.Insert (fact 1));
        Journal.truncate j;
        Journal.append j (Journal.Insert (fact 2));
        Journal.close j;
        let replayed = ok' (Journal.replay file) in
        check_bool "only post-truncate" (List.equal Journal.entry_equal replayed [ Journal.Insert (fact 2) ]));
    tc "journal: incremental and baseline engines write identical journals"
      (fun () ->
        (* The extensional head makes each derivation an inductive
           update, so the run takes several stages and every stage's
           insertions hit the journal in derivation order. The
           incremental engine (cached ordered program, replan banding,
           activation scheduling) must write byte-for-byte what the
           baseline engine (fresh compile every stage) writes — the
           planner may only change how facts are found, never which
           facts, or their order, reach the base data. *)
        let run ~incremental =
          let dir = temp_dir () in
          let file = Filename.concat dir "j.wal" in
          let p = Peer.create ~incremental "p" in
          Peer.set_journal p (Some (Journal.open_ file));
          ok'
            (Peer.load_string p
               "ext e@p(x,y); ext reach@p(x);\n\
                reach@p(1);\n\
                e@p(1,2); e@p(2,3); e@p(3,4); e@p(4,5);\n\
                reach@p($y) :- reach@p($x), e@p($x,$y);");
          let n = ref 0 in
          while Peer.has_work p && !n < 50 do
            ignore (Peer.stage p);
            incr n
          done;
          Option.iter Journal.close (Peer.journal p);
          check_int "reach complete" 5 (List.length (Peer.query p "reach"));
          let ic = open_in_bin file in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        let a = run ~incremental:true in
        let b = run ~incremental:false in
        check_bool "byte-identical journals" (String.equal a b));
    tc "persist: recover a never-checkpointed peer from its journal" (fun () ->
        let dir = temp_dir () in
        let p = Peer.create "p" in
        Persist.attach p ~dir;
        ok' (Peer.load_string p "ext m@p(x); m@p(1); m@p(2);");
        ok' (Peer.delete p (fact 1));
        (* no checkpoint, "crash", recover *)
        let p' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_int "facts" 1 (List.length (Peer.query p' "m"));
        check_bool "right one" (List.hd (Peer.query p' "m") |> Fact.equal (fact 2)));
    tc "persist: checkpoint + journal tail" (fun () ->
        let dir = temp_dir () in
        let p = Peer.create "p" in
        Persist.attach p ~dir;
        ok' (Peer.load_string p "ext m@p(x); int v@p(x); m@p(1); v@p($x) :- m@p($x);");
        ignore (Peer.stage p);
        Persist.checkpoint p ~dir;
        (* post-checkpoint changes live only in the journal *)
        ok' (Peer.insert p (fact 2));
        let p' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_int "both facts" 2 (List.length (Peer.query p' "m"));
        check_int "rules survive via snapshot" 1 (List.length (Peer.rules p'));
        ignore (Peer.stage p');
        check_int "views recompute" 2 (List.length (Peer.query p' "v")));
    tc "persist: induced and received facts are journaled" (fun () ->
        let dir = temp_dir () in
        let sys = System.create () in
        let p = System.add_peer sys "p" in
        let q = System.add_peer sys "q" in
        Persist.attach q ~dir;
        ok' (Peer.load_string p "ext a@p(x); a@p(5); stored@q($x) :- a@p($x);");
        ok' (Peer.load_string q "ext stored@q(x); ext b@q(x); b@q($x) :- stored@q($x);");
        ignore (ok' (System.run sys));
        check_int "received" 1 (List.length (Peer.query q "stored"));
        check_int "induced" 1 (List.length (Peer.query q "b"));
        (* recover q alone: both kinds of fact are in its journal *)
        let q' = ok' (Persist.recover ~dir ~fallback_name:"q" ()) in
        check_int "received recovered" 1 (List.length (Peer.query q' "stored"));
        check_int "induced recovered" 1 (List.length (Peer.query q' "b")));
    tc "persist: recovery keeps journaling" (fun () ->
        let dir = temp_dir () in
        let p = Peer.create "p" in
        Persist.attach p ~dir;
        ok' (Peer.load_string p "ext m@p(x); m@p(1);");
        let p' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        ok' (Peer.insert p' (fact 2));
        let p'' = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_int "all facts" 2 (List.length (Peer.query p'' "m")));
    tc "persist: double recovery is idempotent" (fun () ->
        let dir = temp_dir () in
        let p = Peer.create "p" in
        Persist.attach p ~dir;
        ok' (Peer.load_string p "ext m@p(x); m@p(1); m@p(2);");
        ok' (Peer.delete p (fact 2));
        let once = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        let twice = ok' (Persist.recover ~dir ~fallback_name:"p" ()) in
        check_bool "same"
          (List.equal Fact.equal (Peer.query once "m") (Peer.query twice "m")));
  ]
