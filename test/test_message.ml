open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let rule = Parser.parse_rule "a@p($x) :- b@p($x)"
let fact = Fact.make ~rel:"m" ~peer:"p" [ Value.String "payload" ]

let suite =
  [
    tc "is_empty: only a no-change message is empty" (fun () ->
        check_bool "empty" (Message.is_empty (Message.make ~src:"a" ~dst:"b" ~stage:1 ()));
        check_bool "empty batch is a change"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some []) ())));
        check_bool "installs"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ rule ] ())));
        check_bool "retracts"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~retracts:[ rule ] ()))));
    tc "size grows with content" (fun () ->
        let base = Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ()) in
        let with_fact =
          Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some [ fact ]) ())
        in
        let with_rule =
          Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ rule ] ())
        in
        check_bool "fact adds" (with_fact > base);
        check_bool "rule adds" (with_rule > base));
    tc "pp renders all sections" (fun () ->
        let m =
          Message.make ~src:"a" ~dst:"b" ~stage:4 ~facts:(Some [ fact ])
            ~installs:[ rule ] ~retracts:[ rule ] ()
        in
        let s = Format.asprintf "%a" Message.pp m in
        List.iter
          (fun needle ->
            check_bool needle
              (Str_helper.contains s needle))
          [ "a -> b"; "stage 4"; "fact"; "install"; "retract" ]);
    tc "size counts long rules at their one-line wire rendering" (fun () ->
        (* Wide enough that [Format.asprintf "%a" Rule.pp] wraps at its
           default margin; the sizer must count the unwrapped form. *)
        let wide =
          Parser.parse_rule
            "verylongrelationname@somepeer($a,$b,$c,$d) :- \
             firstbody@somepeer($a,$b), secondbody@somepeer($b,$c), \
             thirdbody@somepeer($c,$d), fourthbody@somepeer($d,$a)"
        in
        let base = Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ()) in
        let with_rule =
          Message.size
            (Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ wide ] ())
        in
        Alcotest.(check int)
          "one-line length"
          (String.length (Pp_util.one_line Rule.pp wide))
          (with_rule - base));
  ]

(* {1 The sizer mirrors the one-line fact rendering, byte for byte}

   Arbitrary relation/peer names (idents and quote-needing strings)
   and arbitrary values: extreme ints, non-finite and high-precision
   floats, strings over the full byte range (escapes, raw control
   bytes, UTF-8 fragments). *)

let name_gen =
  QCheck.Gen.(
    frequency
      [
        (3, oneofl [ "m"; "rel"; "a_b1"; "p0" ]);
        ( 1,
          map
            (fun s -> "x" ^ s)  (* non-empty, often non-ident *)
            (string_size ~gen:char (int_range 0 6)) );
      ])

let value_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun i -> Value.Int i)
            (oneof [ small_signed_int; int; oneofl [ min_int; max_int; 0 ] ]) );
        ( 2,
          map
            (fun f -> Value.Float f)
            (oneof
               [
                 float;
                 oneofl
                   [
                     infinity; neg_infinity; nan; -0.; 0.; 0.1; 1e300;
                     4.2; 1.0000000000000002;
                   ];
               ]) );
        (3, map (fun s -> Value.String s) (string_size ~gen:char (int_range 0 12)));
        (1, map (fun b -> Value.Bool b) bool);
      ])

let fact_gen =
  QCheck.Gen.(
    let* rel = name_gen in
    let* peer = name_gen in
    let* args = list_size (int_range 0 5) value_gen in
    return (Fact.make ~rel ~peer args))

let fact_arb =
  QCheck.make ~print:(fun f -> String.escaped (Fact.to_string f)) fact_gen

let size_property =
  QCheck.Test.make ~count:2000
    ~name:"fact_size equals the one-line rendering's byte length" fact_arb
    (fun f -> Message.fact_size f = String.length (Fact.to_string f))

let suite = suite @ [ QCheck_alcotest.to_alcotest size_property ]
