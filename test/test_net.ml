open Wdl_net

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let suite =
  [
    tc "inmem: immediate FIFO delivery" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"b" 2;
        Alcotest.check (Alcotest.list Alcotest.int) "fifo" [ 1; 2 ]
          (t.Transport.drain "b");
        check_int "empty" 0 (List.length (t.Transport.drain "b")));
    tc "inmem: per-destination inboxes" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"c" 2;
        check_int "b" 1 (List.length (t.Transport.drain "b"));
        check_int "c" 1 (List.length (t.Transport.drain "c")));
    tc "inmem: stats and sizer" (fun () ->
        let t = Inmem.create ~sizer:(fun n -> n) () in
        t.Transport.send ~src:"a" ~dst:"b" 10;
        t.Transport.send ~src:"a" ~dst:"b" 5;
        let s = t.Transport.stats () in
        check_int "sent" 2 s.Netstats.sent;
        check_int "bytes" 15 s.Netstats.bytes;
        ignore (t.Transport.drain "b");
        check_int "delivered" 2 (t.Transport.stats ()).Netstats.delivered);
    tc "inmem: pending counts undrained messages" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        check_int "one" 1 (t.Transport.pending ());
        ignore (t.Transport.drain "b");
        check_int "zero" 0 (t.Transport.pending ()));
    tc "simnet: nothing delivered before latency elapses" (fun () ->
        let t = Simnet.create ~jitter:0. ~base_latency:2.0 () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        check_int "t0" 0 (List.length (t.Transport.drain "b"));
        t.Transport.advance 1.0;
        check_int "t1" 0 (List.length (t.Transport.drain "b"));
        t.Transport.advance 1.0;
        check_int "t2" 1 (List.length (t.Transport.drain "b")));
    tc "simnet: reflexive links are instantaneous" (fun () ->
        let t = Simnet.create ~base_latency:5.0 () in
        t.Transport.send ~src:"a" ~dst:"a" 1;
        check_int "self" 1 (List.length (t.Transport.drain "a")));
    tc "simnet: deterministic under a fixed seed" (fun () ->
        let run () =
          let t = Simnet.create ~seed:7 ~base_latency:1.0 ~jitter:0.5 () in
          for i = 0 to 9 do
            t.Transport.send ~src:"a" ~dst:"b" i
          done;
          t.Transport.advance 1.5;
          t.Transport.drain "b"
        in
        check_bool "same order" (run () = run ()));
    tc "simnet: per-link latency function" (fun () ->
        let t =
          Simnet.create ~jitter:0.
            ~latency:(fun ~src ~dst:_ -> if src = "far" then 10. else 1.)
            ()
        in
        t.Transport.send ~src:"far" ~dst:"b" 1;
        t.Transport.send ~src:"near" ~dst:"b" 2;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "near only" [ 2 ]
          (t.Transport.drain "b");
        t.Transport.advance 9.0;
        Alcotest.check (Alcotest.list Alcotest.int) "far arrives" [ 1 ]
          (t.Transport.drain "b"));
    tc "simnet: equal stamps preserve send order" (fun () ->
        let t = Simnet.create ~jitter:0. ~base_latency:1.0 () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"b" 2;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "fifo" [ 1; 2 ]
          (t.Transport.drain "b"));
    tc "simnet: loss drops copies and counts them" (fun () ->
        let t, ctl = Simnet.create_with_control ~jitter:0. ~loss:1.0 () in
        for i = 1 to 5 do
          t.Transport.send ~src:"a" ~dst:"b" i
        done;
        t.Transport.advance 1.0;
        check_int "all lost" 0 (List.length (t.Transport.drain "b"));
        check_int "counted" 5 (Simnet.messages_lost ctl);
        check_int "sent still counted" 5 (t.Transport.stats ()).Netstats.sent);
    tc "simnet: partial loss is deterministic under the seed" (fun () ->
        let run () =
          let t = Simnet.create ~seed:9 ~jitter:0. ~loss:0.5 () in
          for i = 1 to 20 do
            t.Transport.send ~src:"a" ~dst:"b" i
          done;
          t.Transport.advance 1.0;
          t.Transport.drain "b"
        in
        let got = run () in
        check_bool "some lost" (List.length got < 20);
        check_bool "some survive" (List.length got > 0);
        check_bool "replayable" (got = run ()));
    tc "simnet: a crashed peer loses its inbox and all traffic" (fun () ->
        let t, ctl = Simnet.create_with_control ~jitter:0. () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        Simnet.crash ctl "b";
        check_bool "crashed" (Simnet.crashed ctl "b");
        t.Transport.send ~src:"a" ~dst:"b" 2;  (* dropped: b is down *)
        t.Transport.send ~src:"b" ~dst:"a" 3;  (* dropped: b cannot send *)
        t.Transport.advance 1.0;
        check_int "nothing at b" 0 (List.length (t.Transport.drain "b"));
        check_int "nothing from b" 0 (List.length (t.Transport.drain "a"));
        check_int "inbox + both directions lost" 3 (Simnet.messages_lost ctl);
        Simnet.restart ctl "b";
        t.Transport.send ~src:"a" ~dst:"b" 4;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "delivery resumes" [ 4 ]
          (t.Transport.drain "b"));
    tc "tcp: unreachable peer does not raise; send is parked and counted"
      (fun () ->
        (* Grab a port that is certainly closed by binding and
           releasing it. *)
        let dead_t, dead_c = Tcp.create () in
        let dead_port = Tcp.port dead_c in
        ignore dead_t;
        Tcp.close dead_c;
        let t, c = Tcp.create ~connect_timeout:0.5 ~retry_delay:0.01 () in
        Tcp.register c ~peer:"gone"
          { Tcp.host = "127.0.0.1"; port = dead_port };
        t.Transport.send ~src:"a" ~dst:"gone" "hello?";  (* must not raise *)
        check_bool "failure counted"
          ((t.Transport.stats ()).Netstats.send_failures >= 1);
        check_int "parked for retry" 1 (Tcp.parked_sends c);
        check_bool "pending includes parked" (t.Transport.pending () >= 1);
        Tcp.close c);
    tc "send_many: batches deliver in order and are counted (all transports)"
      (fun () ->
        let check_transport label (t : int Transport.t) advance =
          t.Transport.send_many ~dst:"b" [ ("a", 1); ("c", 2); ("a", 3) ];
          t.Transport.send_many ~dst:"b" [];
          advance t;
          Alcotest.check
            (Alcotest.list Alcotest.int)
            (label ^ ": in order") [ 1; 2; 3 ] (t.Transport.drain "b");
          check_int (label ^ ": batches counted") 2
            (t.Transport.stats ()).Netstats.batches;
          check_int (label ^ ": messages counted") 3
            (t.Transport.stats ()).Netstats.sent
        in
        check_transport "inmem" (Inmem.create ()) (fun _ -> ());
        check_transport "simnet"
          (Simnet.create ~jitter:0. ())
          (fun t -> t.Transport.advance 1.0));
    tc "unregistered destination: inmem/simnet keep it drainable, not lost"
      (fun () ->
        (* In-process transports have no registry: a name nobody drained
           yet still accumulates and delivers on its first drain. *)
        let ti : int Transport.t = Inmem.create () in
        ti.Transport.send ~src:"a" ~dst:"nobody" 1;
        check_int "inmem pending" 1 (ti.Transport.pending ());
        check_int "inmem delivers" 1 (List.length (ti.Transport.drain "nobody"));
        let ts : int Transport.t = Simnet.create ~jitter:0. () in
        ts.Transport.send ~src:"a" ~dst:"nobody" 1;
        ts.Transport.advance 1.0;
        check_int "simnet delivers" 1 (List.length (ts.Transport.drain "nobody")));
    tc "tcp: unregistered remote destination dead-letters, no silent queue"
      (fun () ->
        (* Misconfigured peer name: neither registered nor ever drained
           here. It must not sit in a local queue forever inflating
           [pending] — it parks, retries, and becomes a dead letter. *)
        let t, c = Tcp.create ~retry_delay:0.005 ~max_retries:2 () in
        t.Transport.send ~src:"a" ~dst:"no such peer" "hello?";
        check_int "parked, not silently queued" 1 (Tcp.parked_sends c);
        check_bool "pending visible" (t.Transport.pending () >= 1);
        (* Let the backoff deadlines pass, pumping via [pending]. *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Tcp.parked_sends c > 0 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.01;
          ignore (t.Transport.pending ())
        done;
        check_int "gave up" 0 (Tcp.parked_sends c);
        check_int "dead letter counted" 1 (Tcp.dead_letters c);
        check_bool "failure surfaced"
          ((t.Transport.stats ()).Netstats.send_failures >= 1);
        check_int "nothing left pending" 0 (t.Transport.pending ());
        Tcp.close c);
    tc "tcp: parking a few thousand sends stays fast (heap, not list)"
      (fun () ->
        let t, c = Tcp.create () in
        let n = 3000 in
        let t0 = Unix.gettimeofday () in
        for i = 1 to n do
          t.Transport.send ~src:"a" ~dst:"late" (string_of_int i)
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        check_int "all parked" n (Tcp.parked_sends c);
        check_bool "no quadratic blowup" (elapsed < 2.0);
        (* The destination turns out to live here: its first drain
           flushes the whole backlog, in send order. *)
        let got = t.Transport.drain "late" in
        check_int "all flushed" n (List.length got);
        check_bool "in order"
          (got = List.init n (fun i -> string_of_int (i + 1)));
        check_int "heap empty" 0 (Tcp.parked_sends c);
        Tcp.close c);
    tc "tcp: read_all is bounded; a stalled writer only loses its frame"
      (fun () ->
        let t, c = Tcp.create ~read_timeout:0.15 () in
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect sock
          (Unix.ADDR_INET (Unix.inet_addr_loopback, Tcp.port c));
        (* Half a frame, and the write side stays open forever. *)
        ignore (Unix.write_substring sock "5\n" 0 2);
        let t0 = Unix.gettimeofday () in
        let got = t.Transport.drain "whoever" in
        let elapsed = Unix.gettimeofday () -. t0 in
        Unix.close sock;
        check_int "partial frame dropped" 0 (List.length got);
        check_bool "returned promptly, not hung" (elapsed < 2.0);
        (* The transport still works afterwards. *)
        t.Transport.send ~src:"a" ~dst:"b" "still alive";
        Alcotest.check (Alcotest.list Alcotest.string) "subsequent frames ok"
          [ "still alive" ] (t.Transport.drain "b");
        Tcp.close c);
  ]
