(* The observability subsystem: registry semantics, histogram bucket
   boundaries, Prometheus exposition, chrome-trace JSON. *)

module Obs = Wdl_obs.Obs
module Prometheus = Wdl_obs.Prometheus
module Chrome_trace = Wdl_obs.Chrome_trace

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let check_string msg = Alcotest.check Alcotest.string msg

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let registry_tests =
  [
    tc "get-or-create returns the same counter" (fun () ->
        let r = Obs.create () in
        let c1 = Obs.counter ~registry:r "a_total" in
        Obs.inc c1;
        let c2 = Obs.counter ~registry:r "a_total" in
        Obs.inc ~by:4 c2;
        check_int "shared" 5 (Obs.counter_value c1));
    tc "labels distinguish series, order does not" (fun () ->
        let r = Obs.create () in
        let c1 = Obs.counter ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "m" in
        let c2 = Obs.counter ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "m" in
        let c3 = Obs.counter ~registry:r ~labels:[ ("a", "9") ] "m" in
        Obs.inc c1;
        check_int "normalized same series" 1 (Obs.counter_value c2);
        check_int "different labels" 0 (Obs.counter_value c3));
    tc "kind clash raises" (fun () ->
        let r = Obs.create () in
        ignore (Obs.counter ~registry:r "m");
        Alcotest.check_raises "gauge on counter name"
          (Invalid_argument "Obs: metric m already registered with another kind")
          (fun () -> ignore (Obs.gauge ~registry:r "m")));
    tc "invalid names are rejected" (fun () ->
        let r = Obs.create () in
        List.iter
          (fun bad ->
            match Obs.counter ~registry:r bad with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "accepted %S" bad)
          [ ""; "9lives"; "has space"; "dash-ed" ]);
    tc "gauge set/add" (fun () ->
        let r = Obs.create () in
        let g = Obs.gauge ~registry:r "g" in
        Obs.set g 2.5;
        Obs.add g 0.5;
        Alcotest.check (Alcotest.float 1e-9) "value" 3.0 (Obs.gauge_value g));
    tc "callback replaces on same name+labels, read samples it" (fun () ->
        let r = Obs.create () in
        Obs.on_collect ~registry:r ~kind:`Counter "cb_total" (fun () -> 1.);
        Obs.on_collect ~registry:r ~kind:`Counter "cb_total" (fun () -> 7.);
        check_bool "read" (Obs.read ~registry:r "cb_total" = Some 7.);
        check_int "one series"
          (List.length
             (List.filter
                (fun s -> s.Obs.s_name = "cb_total")
                (Obs.collect ~registry:r ())))
          1);
    tc "raising callback collects as NaN" (fun () ->
        let r = Obs.create () in
        Obs.on_collect ~registry:r ~kind:`Gauge "boom" (fun () ->
            failwith "boom");
        match Obs.collect ~registry:r () with
        | [ { Obs.s_value = `Value v; _ } ] -> check_bool "nan" (Float.is_nan v)
        | _ -> Alcotest.fail "expected one sample");
    tc "clear drops families; get-or-create revives them" (fun () ->
        let r = Obs.create () in
        let c = Obs.counter ~registry:r "c_total" in
        Obs.inc c;
        Obs.clear r;
        check_int "empty" 0 (List.length (Obs.collect ~registry:r ()));
        let c' = Obs.counter ~registry:r "c_total" in
        check_int "fresh" 0 (Obs.counter_value c'));
    tc "read_one defaults to zero" (fun () ->
        let r = Obs.create () in
        check_bool "absent" (Obs.read_one ~registry:r "nope" = 0.));
  ]

let histogram_tests =
  [
    tc "bucket boundaries use le semantics" (fun () ->
        let r = Obs.create () in
        let h = Obs.histogram ~registry:r ~buckets:[| 1.; 5.; 10. |] "h" in
        (* exactly on a bound lands in that bucket; just above spills *)
        List.iter (Obs.observe h) [ 1.0; 1.0001; 5.0; 10.0; 10.0001 ];
        match Obs.collect ~registry:r () with
        | [ { Obs.s_value = `Histogram (cum, sum, total); _ } ] ->
          check_int "total" 5 total;
          Alcotest.check (Alcotest.float 1e-6) "sum" 27.0002 sum;
          let counts = Array.map snd cum in
          (* cumulative: le=1 -> 1, le=5 -> 3, le=10 -> 4, +Inf -> 5 *)
          check_bool "cumulative counts"
            (counts = [| 1; 3; 4; 5 |]);
          check_bool "last bound is +Inf" (fst cum.(3) = infinity)
        | _ -> Alcotest.fail "expected one histogram sample");
    tc "observations below the first bound land in the first bucket"
      (fun () ->
        let r = Obs.create () in
        let h = Obs.histogram ~registry:r ~buckets:[| 10.; 20. |] "h" in
        Obs.observe h (-5.);
        Obs.observe h 0.;
        match Obs.collect ~registry:r () with
        | [ { Obs.s_value = `Histogram (cum, _, _); _ } ] ->
          check_int "first bucket" 2 (snd cum.(0))
        | _ -> Alcotest.fail "expected histogram");
    tc "non-ascending buckets rejected" (fun () ->
        let r = Obs.create () in
        match Obs.histogram ~registry:r ~buckets:[| 5.; 5. |] "h" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "accepted non-ascending bounds");
    tc "time observes even on exception" (fun () ->
        let r = Obs.create () in
        let h = Obs.histogram ~registry:r "h" in
        (try Obs.time h (fun () -> failwith "boom") with Failure _ -> ());
        check_int "count" 1 (Obs.histogram_count h);
        check_bool "nonnegative" (Obs.histogram_sum h >= 0.));
  ]

let prometheus_tests =
  [
    tc "label values escape backslash, quote, newline" (fun () ->
        check_string "escaped" {|a\\b\"c\nd|}
          (Prometheus.escape_label_value "a\\b\"c\nd"));
    tc "help escapes backslash and newline but not quotes" (fun () ->
        check_string "escaped" {|say "hi"\\\n|}
          (Prometheus.escape_help "say \"hi\"\\\n"));
    tc "exposition renders counters, gauges and histograms" (fun () ->
        let r = Obs.create () in
        Obs.inc ~by:3
          (Obs.counter ~registry:r ~help:"a counter"
             ~labels:[ ("peer", "p\"1") ] "t_total");
        Obs.set (Obs.gauge ~registry:r "t_gauge") 1.5;
        Obs.observe (Obs.histogram ~registry:r ~buckets:[| 1.; 2. |] "t_h") 1.5;
        let text = Prometheus.expose ~registry:r () in
        List.iter
          (fun needle -> check_bool needle (contains text needle))
          [
            "# HELP t_total a counter";
            "# TYPE t_total counter";
            {|t_total{peer="p\"1"} 3|};
            "# TYPE t_gauge gauge";
            "t_gauge 1.5";
            "# TYPE t_h histogram";
            {|t_h_bucket{le="1"} 0|};
            {|t_h_bucket{le="2"} 1|};
            {|t_h_bucket{le="+Inf"} 1|};
            "t_h_sum 1.5";
            "t_h_count 1";
          ]);
    tc "every line ends in newline; content type pinned" (fun () ->
        let r = Obs.create () in
        ignore (Obs.counter ~registry:r "x_total");
        let text = Prometheus.expose ~registry:r () in
        check_bool "trailing newline"
          (text <> "" && text.[String.length text - 1] = '\n');
        check_string "content type" "text/plain; version=0.0.4"
          Prometheus.content_type);
  ]

let chrome_tests =
  [
    tc "to_json renders events with instant scope" (fun () ->
        let events =
          [
            { Chrome_trace.name = "stage"; cat = "eval"; ph = "B"; ts = 1.5;
              pid = 0; tid = 2; args = [ ("peer", "p") ] };
            { Chrome_trace.name = "x\"y"; cat = "engine"; ph = "i"; ts = 2.;
              pid = 0; tid = 2; args = [] };
          ]
        in
        let json = Chrome_trace.to_json events in
        List.iter
          (fun needle -> check_bool needle (contains json needle))
          [
            {|{"traceEvents":[|};
            {|"name":"stage"|};
            {|"ph":"B"|};
            {|"args":{"peer":"p"}|};
            {|"name":"x\"y"|};
            {|"ph":"i","ts":2.0,"pid":0,"tid":2|};
            {|"s":"t"|};
          ]);
    tc "escape handles control characters" (fun () ->
        check_string "escaped" "a\\u0001b\\tc"
          (Chrome_trace.escape "a\001b\tc"));
  ]

let engine_tests =
  [
    tc "a system run populates the default registry" (fun () ->
        Obs.clear Obs.default;
        let sys = Webdamlog.System.create () in
        let p = Webdamlog.System.add_peer sys "obs_p" in
        (match
           Webdamlog.Peer.load_string p
             "int t@obs_p(x);\nn@obs_p(1);\nt@obs_p($x) :- n@obs_p($x);"
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (match Webdamlog.System.run sys with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        check_bool "rounds counted"
          (Obs.read_one "wdl_system_rounds_total" > 0.);
        check_bool "per-peer derivations"
          (Obs.read_one ~labels:[ ("peer", "obs_p") ]
             "wdl_peer_derivations_total"
          > 0.);
        check_bool "stage histogram observed"
          (Obs.read_one ~labels:[ ("peer", "obs_p") ]
             "wdl_eval_stage_duration_microseconds"
          > 0.);
        check_bool "netstats re-exported"
          (Obs.read ~labels:[ ("transport", "inmem") ] "wdl_net_sent_total"
          <> None);
        Obs.clear Obs.default);
  ]

let suite =
  registry_tests @ histogram_tests @ prometheus_tests @ chrome_tests
  @ engine_tests
