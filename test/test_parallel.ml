(* The parallel fixpoint engine: differential oracles against the
   sequential engine and [Reference], the sequential-ablation code-path
   identity, and journal/trace byte-identity between engines. *)
open Wdl_syntax
open Wdl_eval

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg b = Alcotest.(check bool) msg true b
let check_int msg a b = Alcotest.(check int) msg a b

let ok' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* {1 Single-stage differential: parallel vs sequential vs Reference}

   Random local programs (recursion, negation, builtins, aggregation,
   relation variables, delegation) with random shard counts — shard
   count and domain count vary independently. *)

let spec_shards_arb =
  QCheck.pair Test_differential.dspec_arb (QCheck.int_range 1 12)

let engine ?domains ?shards () ~self db rules =
  Fixpoint.run ?domains ?shards ~self db rules

let differential =
  [
    QCheck.Test.make ~count:120
      ~name:"parallel (2 and 4 domains) agrees with sequential and reference"
      spec_shards_arb
      (fun (spec, shards) ->
        let seq = Test_differential.run_engine (engine ()) spec in
        seq = Test_differential.run_engine (engine ~domains:2 ~shards ()) spec
        && seq = Test_differential.run_engine (engine ~domains:4 ~shards ()) spec
        && seq
           = Test_differential.run_engine
               (fun ~self db rules -> Reference.run ~self db rules)
               spec);
  ]

(* {1 Multi-stage differential through full peers}

   Drives parallel peers through several stages with fact inserts,
   rule additions and rule deletions arriving mid-run (each mutation
   invalidates the cached program), and compares every stage's
   database dump and outbound messages against a sequential peer, plus
   the [Reference] from-scratch oracle on the final state. *)

type pev = {
  p_inserts : (string * int list) list;
  p_add : string option;
  p_del : int option;  (* remove the nth rule currently installed *)
}

type pscript = { p_base : Test_differential.dspec; p_evs : pev list }

let pev_gen =
  QCheck.Gen.(
    let* p_inserts = list_size (int_range 0 3) Test_differential.fact_gen in
    let* with_add = int_range 0 2 in
    let* rule = oneofl Test_differential.rule_pool in
    let* with_del = int_range 0 2 in
    let* del_at = int_range 0 5 in
    return
      {
        p_inserts;
        p_add = (if with_add = 0 then Some rule else None);
        p_del = (if with_del = 0 then Some del_at else None);
      })

let pscript_gen =
  QCheck.Gen.(
    let* p_base = Test_differential.dspec_gen in
    let* p_evs = list_size (int_range 1 4) pev_gen in
    return { p_base; p_evs })

let pscript_print s =
  let ev e =
    Printf.sprintf "inserts=[%s] add=%s del=%s"
      (String.concat "; "
         (List.map
            (fun (r, args) ->
              Printf.sprintf "%s(%s)" r
                (String.concat "," (List.map string_of_int args)))
            e.p_inserts))
      (Option.value ~default:"-" e.p_add)
      (match e.p_del with None -> "-" | Some i -> string_of_int i)
  in
  Test_differential.dspec_print s.p_base
  ^ "\n"
  ^ String.concat "\n" (List.map ev s.p_evs)

let pscript_arb = QCheck.make ~print:pscript_print pscript_gen

(* One (db dump, sorted outbound messages) observation per stage. *)
let drive_par ~domains script =
  let open Webdamlog in
  let p = Peer.create ~domains "p" in
  let db = Peer.database p in
  Test_differential.declare_views db;
  let insert_fact (rel, args) =
    ignore
      (Peer.insert p
         (Fact.make ~rel ~peer:"p" (List.map (fun n -> Value.Int n) args)))
  in
  List.iter insert_fact script.p_base.Test_differential.facts;
  List.iter
    (fun n ->
      ignore
        (Peer.insert p (Fact.make ~rel:"names" ~peer:"p" [ Value.String n ])))
    script.p_base.Test_differential.names;
  List.iter
    (fun r -> ignore (Peer.add_rule p (Test_differential.parse_rule_str r)))
    script.p_base.Test_differential.rules;
  let quiet = { p_inserts = []; p_add = None; p_del = None } in
  List.map
    (fun ev ->
      List.iter insert_fact ev.p_inserts;
      Option.iter
        (fun r -> ignore (Peer.add_rule p (Test_differential.parse_rule_str r)))
        ev.p_add;
      Option.iter
        (fun i ->
          match Peer.rules p with
          | [] -> ()
          | rules -> ignore (Peer.remove_rule p (List.nth rules (i mod List.length rules))))
        ev.p_del;
      let out = Peer.stage p in
      let obs =
        ( Test_differential.dump_db db,
          List.sort compare (List.map (Format.asprintf "%a" Message.pp) out) )
      in
      (p, obs))
    (script.p_evs @ [ quiet; quiet ])

let multi_stage =
  [
    QCheck.Test.make ~count:60
      ~name:
        "multi-stage with rule adds/deletions: parallel peers agree with \
         sequential"
      pscript_arb
      (fun script ->
        let seq = List.map snd (drive_par ~domains:1 script) in
        seq = List.map snd (drive_par ~domains:2 script)
        && seq = List.map snd (drive_par ~domains:4 script));
    QCheck.Test.make ~count:40
      ~name:"multi-stage: parallel peer agrees with the reference oracle"
      pscript_arb
      (fun script ->
        List.for_all
          (fun (p, _) -> Test_differential.oracle_agrees p)
          (drive_par ~domains:3 script));
  ]

(* {1 Ablation identity and byte-identity} *)

let tc_db () =
  let open Wdl_store in
  let db = Database.create () in
  ignore
    (Database.declare db
       (Decl.make ~kind:Decl.Intensional ~rel:"tc" ~peer:"p" [ "a"; "b" ]));
  for i = 1 to 12 do
    ignore
      (Database.insert db ~rel:"e"
         (Tuple.of_list [ Value.Int i; Value.Int (i + 1) ]))
  done;
  db

let tc_rules () =
  List.map Test_differential.parse_rule_str
    [ "tc@p($x,$y) :- e@p($x,$y);"; "tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);" ]

let ok_run = function
  | Ok (r : Fixpoint.result) -> r
  | Error _ -> Alcotest.fail "fixpoint error"

let unit_tests =
  [
    tc "?domains:1 and the default take the identical sequential code path"
      (fun () ->
        let before = !Fixpoint.par_runs_total in
        ignore (ok_run (Fixpoint.run ~self:"p" (tc_db ()) (tc_rules ())));
        ignore
          (ok_run (Fixpoint.run ~domains:1 ~self:"p" (tc_db ()) (tc_rules ())));
        check_int "sequential runs never engage the parallel engine" before
          !Fixpoint.par_runs_total;
        ignore
          (ok_run (Fixpoint.run ~domains:2 ~self:"p" (tc_db ()) (tc_rules ())));
        check_int "a 2-domain run engages it exactly once" (before + 1)
          !Fixpoint.par_runs_total);
    tc "parallel run matches sequential iterations and derivations on tc"
      (fun () ->
        let seq = ok_run (Fixpoint.run ~self:"p" (tc_db ()) (tc_rules ())) in
        let par =
          ok_run
            (Fixpoint.run ~domains:4 ~shards:7 ~self:"p" (tc_db ())
               (tc_rules ()))
        in
        check_int "iterations" seq.Fixpoint.iterations par.Fixpoint.iterations;
        check_int "derivations" seq.Fixpoint.derivations par.Fixpoint.derivations;
        check_bool "deduced lists identical (canonical order)"
          (List.equal Fact.equal seq.Fixpoint.deduced par.Fixpoint.deduced));
    tc "journal and trace are byte-identical between engines" (fun () ->
        let open Webdamlog in
        let run ~domains =
          let dir = Filename.temp_file "wdlpar" "" in
          Sys.remove dir;
          Unix.mkdir dir 0o700;
          let file = Filename.concat dir "j.wal" in
          let p = Peer.create ~domains "p" in
          Peer.set_journal p (Some (Wdl_store.Journal.open_ file));
          ok'
            (Peer.load_string p
               "ext e@p(x,y); int tc@p(x,y); ext acc@p(x,y);\n\
                e@p(1,2); e@p(2,3); e@p(3,4); e@p(4,5); e@p(5,6);\n\
                tc@p($x,$y) :- e@p($x,$y);\n\
                tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);\n\
                acc@p($x,$y) :- tc@p($x,$y);");
          let n = ref 0 in
          while Peer.has_work p && !n < 50 do
            ignore (Peer.stage p);
            incr n
          done;
          Option.iter Wdl_store.Journal.close (Peer.journal p);
          check_int "tc complete" 15 (List.length (Peer.query p "tc"));
          let ic = open_in_bin file in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          let trace =
            String.concat "\n"
              (List.map
                 (Format.asprintf "%a" Trace.pp_event)
                 (Trace.events (Peer.trace p)))
          in
          (s, trace)
        in
        let j_seq, t_seq = run ~domains:1 in
        let j_par, t_par = run ~domains:4 in
        check_bool "byte-identical journals" (String.equal j_seq j_par);
        check_bool "byte-identical traces" (String.equal t_seq t_par));
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest (differential @ multi_stage) @ unit_tests
