open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let fact rel peer args = Fact.make ~rel ~peer args

let suite =
  [
    tc "create validates the name" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Peer.create: empty name")
          (fun () -> ignore (Peer.create "")));
    tc "load_program reports the failing statement" (fun () ->
        let p = Peer.create "p" in
        match Peer.load_string p "a@p(1); a@q(2);" with
        | Error msg ->
          check_bool "mentions statement 2"
            (String.length msg >= 11 && String.sub msg 0 11 = "statement 2")
        | Ok () -> Alcotest.fail "expected error");
    tc "declarations for other peers rejected" (fun () ->
        let p = Peer.create "p" in
        check_bool "rejected"
          (Result.is_error (Peer.load_string p "ext m@q(a);")));
    tc "views cannot be updated directly" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "int v@p(x);");
        check_bool "insert rejected"
          (Result.is_error (Peer.insert p (fact "v" "p" [ Value.Int 1 ])));
        check_bool "fact statement rejected"
          (Result.is_error (Peer.load_string p "v@p(1);")));
    tc "unsafe rules rejected at load" (fun () ->
        let p = Peer.create "p" in
        check_bool "rejected"
          (Result.is_error (Peer.load_string p "v@p($x) :- a@p($y);")));
    tc "negation cycles rejected at rule addition" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "int a@p(x); int b@p(x);");
        ok (Peer.load_string p "a@p($x) :- base@p($x), not b@p($x);");
        check_bool "cycle rejected"
          (Result.is_error
             (Peer.add_rule p
                (Parser.parse_rule "b@p($x) :- base@p($x), not a@p($x)"))));
    tc "insert/delete toggle has_work" (fun () ->
        let p = Peer.create "p" in
        check_bool "fresh" (not (Peer.has_work p));
        ok (Peer.insert p (fact "m" "p" [ Value.Int 1 ]));
        check_bool "dirty" (Peer.has_work p);
        ignore (Peer.stage p);
        check_bool "clean" (not (Peer.has_work p));
        (* Duplicate insert is a no-op: stays clean. *)
        ok (Peer.insert p (fact "m" "p" [ Value.Int 1 ]));
        check_bool "still clean" (not (Peer.has_work p)));
    tc "facts for other peers rejected" (fun () ->
        let p = Peer.create "p" in
        check_bool "rejected"
          (Result.is_error (Peer.insert p (fact "m" "q" [ Value.Int 1 ]))));
    tc "stage computes views" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "int v@p(x); a@p(1); a@p(2); v@p($x) :- a@p($x);");
        ignore (Peer.stage p);
        check_int "view" 2 (List.length (Peer.query p "v")));
    tc "inductive updates land one stage later" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "a@p(1); b@p($x) :- a@p($x);");
        ignore (Peer.stage p);
        check_int "not yet" 0 (List.length (Peer.query p "b"));
        check_bool "work pending" (Peer.has_work p);
        ignore (Peer.stage p);
        check_int "applied" 1 (List.length (Peer.query p "b"));
        (* And the system settles: nothing new keeps arriving. *)
        ignore (Peer.stage p);
        check_bool "settled" (not (Peer.has_work p)));
    tc "inductive chains take one stage per step" (fun () ->
        let p = Peer.create "p" in
        ok
          (Peer.load_string p
             "a@p(1); b@p($x) :- a@p($x); c@p($x) :- b@p($x);");
        let rec settle n = if Peer.has_work p then begin ignore (Peer.stage p); settle (n + 1) end else n in
        let stages = settle 0 in
        check_int "c" 1 (List.length (Peer.query p "c"));
        check_bool "several stages" (stages >= 2));
    tc "query returns sorted facts, unknown relation empty" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "m@p(3); m@p(1);");
        (match Peer.query p "m" with
        | [ f1; f2 ] -> check_bool "sorted" (Fact.compare f1 f2 < 0)
        | _ -> Alcotest.fail "expected two");
        check_int "unknown" 0 (List.length (Peer.query p "nothing")));
    tc "remove_rule stops derivation of views" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "int v@p(x); a@p(1); v@p($x) :- a@p($x);");
        ignore (Peer.stage p);
        check_int "before" 1 (List.length (Peer.query p "v"));
        let r = List.hd (Peer.rules p) in
        check_bool "removed" (Peer.remove_rule p r);
        check_bool "absent now" (not (Peer.remove_rule p r));
        ignore (Peer.stage p);
        check_int "after" 0 (List.length (Peer.query p "v")));
    tc "runtime errors surface in last_errors" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "sel@p(42); v@q($x) :- sel@p($a), d@$a($x);");
        ignore (Peer.stage p);
        check_bool "error recorded" (Peer.last_errors p <> []));
    tc "stable stages stop emitting messages" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "a@p(1); out@q($x) :- a@p($x);");
        let m1 = Peer.stage p in
        check_int "first send" 1 (List.length m1);
        (* Force another stage: same batch, nothing sent. *)
        ok (Peer.insert p (fact "noise" "p" [ Value.Int 1 ]));
        let m2 = Peer.stage p in
        check_int "no resend" 0 (List.length m2));
    tc "batch changes trigger a fresh send including removals" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "a@p(1); int v@p(x); v@p($x) :- a@p($x); out@q($x) :- v@p($x);");
        let m1 = Peer.stage p in
        check_int "send" 1 (List.length m1);
        ok (Peer.delete p (fact "a" "p" [ Value.Int 1 ]));
        let m2 = Peer.stage p in
        (match m2 with
        | [ m ] -> check_bool "empty batch sent" (m.Message.facts = Some [])
        | _ -> Alcotest.fail "expected one message"));
    tc "incremental engine: cache hits, fast path, and invalidation" (fun () ->
        let read p name =
          int_of_float (Wdl_obs.Obs.read_one ~labels:[ ("peer", name) ] p)
        in
        let p = Peer.create "inc_p" in
        ok
          (Peer.load_string p
             "int v@inc_p(x); a@inc_p(1); v@inc_p($x) :- a@inc_p($x);");
        ignore (Peer.stage p);
        let hits0 = read "wdl_eval_program_cache_hits_total" "inc_p" in
        let fast0 = read "wdl_eval_stage_fastpath_total" "inc_p" in
        (* Quiescent: no inputs changed, the whole fixpoint is skipped. *)
        check_int "quiescent stage sends nothing" 0 (List.length (Peer.stage p));
        check_int "fast path taken" (fast0 + 1)
          (read "wdl_eval_stage_fastpath_total" "inc_p");
        (* New fact, same rules, but [a] doubles from 1 to 2 tuples —
           that crosses a cardinality band, so the planner recompiles
           with fresh statistics instead of reusing the cache. *)
        let replans0 = read "wdl_eval_replans_total" "inc_p" in
        ok (Peer.insert p (fact "a" "inc_p" [ Value.Int 2 ]));
        ignore (Peer.stage p);
        check_int "band crossing replans" (replans0 + 1)
          (read "wdl_eval_replans_total" "inc_p");
        check_int "view caught up" 2 (List.length (Peer.query p "v"));
        (* 2 -> 3 tuples stays inside the band: cached program reused. *)
        ok (Peer.insert p (fact "a" "inc_p" [ Value.Int 3 ]));
        ignore (Peer.stage p);
        check_int "cached program reused" (hits0 + 1)
          (read "wdl_eval_program_cache_hits_total" "inc_p");
        check_int "view caught up again" 3 (List.length (Peer.query p "v"));
        (* Rule change invalidates: the next stage recompiles (no hit). *)
        ok (Peer.load_string p "int w@inc_p(x); w@inc_p($x) :- a@inc_p($x);");
        ignore (Peer.stage p);
        check_int "invalidated, recompiled" (hits0 + 1)
          (read "wdl_eval_program_cache_hits_total" "inc_p");
        check_int "new view filled" 3 (List.length (Peer.query p "w"));
        (* The ablation switch restores per-stage recompilation. *)
        let b = Peer.create ~incremental:false "inc_b" in
        ok
          (Peer.load_string b
             "int v@inc_b(x); a@inc_b(1); v@inc_b($x) :- a@inc_b($x);");
        ignore (Peer.stage b);
        ignore (Peer.stage b);
        check_int "no fast path when disabled" 0
          (read "wdl_eval_stage_fastpath_total" "inc_b");
        check_int "no cache when disabled" 0
          (read "wdl_eval_program_cache_hits_total" "inc_b");
        check_int "same result" 1 (List.length (Peer.query b "v")));
    tc "delta staging: additive runs seed the fixpoint, deletions fall back"
      (fun () ->
        let read p name =
          int_of_float (Wdl_obs.Obs.read_one ~labels:[ ("peer", name) ] p)
        in
        let deltas () = read "wdl_eval_delta_stages_total" "dlt_p" in
        (* A transitive closure: a seeded pass must chase multi-hop
           consequences of one new edge, not just direct joins. The
           baseline twin recomputes every view from scratch each
           stage; both must agree after every insertion. *)
        let prog name =
          Printf.sprintf
            "ext e@%s(x,y); int r@%s(x,y);\n\
             r@%s($x,$y) :- e@%s($x,$y);\n\
             r@%s($x,$z) :- r@%s($x,$y), e@%s($y,$z);"
            name name name name name name name
        in
        let p = Peer.create "dlt_p" in
        let b = Peer.create ~incremental:false "dlt_b" in
        ok (Peer.load_string p (prog "dlt_p"));
        ok (Peer.load_string b (prog "dlt_b"));
        let edge name x y =
          fact "e" name [ Value.Int x; Value.Int y ]
        in
        let settle q = ignore (Peer.stage q) in
        settle p; settle b;
        check_int "first stage is a full one" 0 (deltas ());
        let closure q = List.length (Peer.query q "r") in
        List.iteri
          (fun i (x, y) ->
            ok (Peer.insert p (edge "dlt_p" x y));
            ok (Peer.insert b (edge "dlt_b" x y));
            settle p; settle b;
            check_int
              (Printf.sprintf "closure agrees after edge %d" i)
              (closure b) (closure p))
          [ (1, 2); (2, 3); (3, 4); (2, 5) ];
        check_int "additive stages ran as delta stages" 4 (deltas ());
        (* A deletion is not additive: the next stage recomputes from
           scratch, and the shrunken closure matches the baseline's. *)
        ok (Peer.delete p (edge "dlt_p" 2 3));
        ok (Peer.delete b (edge "dlt_b" 2 3));
        settle p; settle b;
        check_int "deletion fell back to a full stage" 4 (deltas ());
        check_int "closure shrank identically" (closure b) (closure p);
        (* Negation disqualifies the rule set entirely. *)
        let n = Peer.create "dlt_n" in
        ok
          (Peer.load_string n
             "ext a@dlt_n(x); ext blocked@dlt_n(x); int ok@dlt_n(x);\n\
              a@dlt_n(1);\n\
              ok@dlt_n($x) :- a@dlt_n($x), not blocked@dlt_n($x);");
        ignore (Peer.stage n);
        ok (Peer.insert n (fact "a" "dlt_n" [ Value.Int 2 ]));
        ignore (Peer.stage n);
        check_int "non-monotone rules never delta-stage" 0
          (read "wdl_eval_delta_stages_total" "dlt_n");
        check_int "and still compute correctly" 2
          (List.length (Peer.query n "ok")));
    tc "trace records lifecycle events" (fun () ->
        let p = Peer.create "p" in
        ok (Peer.load_string p "int v@p(x); a@p(1); v@p($x) :- a@p($x);");
        ignore (Peer.stage p);
        let events = Trace.events (Peer.trace p) in
        check_bool "rule added"
          (List.exists (function Trace.Rule_added _ -> true | _ -> false) events);
        check_bool "fact inserted"
          (List.exists (function Trace.Fact_inserted _ -> true | _ -> false) events);
        check_bool "stage bracketed"
          (List.exists (function Trace.Stage_start _ -> true | _ -> false) events
          && List.exists (function Trace.Stage_end _ -> true | _ -> false) events));
    tc "revival flushes dead letters ahead of fresh sends (FIFO)" (fun () ->
        (* Park several batches for a dead name across rounds, then
           revive it with new traffic already pending.  The parked
           letters must reach the receiver before anything staged after
           the revival — observed via the receiver's Message_received
           trace, whose stage counters are strictly increasing iff the
           transport saw oldest-first order. *)
        let sys =
          System.create
            ~transport:(Wdl_net.Inmem.create ~sizer:Message.size ())
            ~drop_unknown:false
            ~membership:
              { Membership.suspect_after = 1; dead_after = 2; probe_every = 0 }
            ()
        in
        let p = System.add_peer sys "p" in
        ok (Peer.load_string p "ext a@p(x); a@p(1); out@ghost($x) :- a@p($x);");
        ignore (System.round sys);
        for _ = 1 to 3 do
          ignore (System.round sys)
        done;
        check_bool "ghost declared dead"
          (System.membership_status sys "ghost" = Some Membership.Dead);
        (* Each insert+round parks one more batch (older stages first). *)
        ok (Peer.insert p (fact "a" "p" [ Value.Int 2 ]));
        ignore (System.round sys);
        ok (Peer.insert p (fact "a" "p" [ Value.Int 3 ]));
        ignore (System.round sys);
        check_bool "at least two parked" (System.dead_letters sys >= 2);
        (* Fresh work is queued before the revival, so the first round
           after [add_peer] coalesces new sends while the flushed
           letters already sit in the transport. *)
        ok (Peer.insert p (fact "a" "p" [ Value.Int 4 ]));
        let ghost = System.add_peer sys "ghost" in
        check_int "flushed at revival" 0 (System.dead_letters sys);
        ignore (ok (System.run sys));
        let stages =
          List.filter_map
            (function
              | Trace.Message_received { msg }
                when msg.Message.src = "p" && not (Message.is_empty msg) ->
                Some msg.Message.stage
              | _ -> None)
            (Trace.events (Peer.trace ghost))
        in
        check_bool "parked and fresh both delivered" (List.length stages >= 3);
        check_bool "oldest-first FIFO"
          (List.sort_uniq compare stages = stages);
        check_int "end state converged" 4 (List.length (Peer.query ghost "out")));
  ]
