(* Compiled rule plans: slot allocation and instantiation helpers. *)
open Wdl_syntax
open Wdl_eval

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let suite =
  [
    tc "slots are allocated in first-occurrence order" (fun () ->
        let plan =
          Plan.compile
            (Parser.parse_rule "h@p($b, $a) :- x@p($a, $b), y@p($b, $c)")
        in
        Alcotest.check
          (Alcotest.array Alcotest.string)
          "names" [| "a"; "b"; "c" |] plan.Plan.slot_names;
        check_int "nslots" 3 plan.Plan.nslots);
    tc "name variables share slots with data variables" (fun () ->
        (* $a is first a data variable, then a peer name. *)
        let plan =
          Plan.compile (Parser.parse_rule "h@p($x) :- sel@p($a), data@$a($x)")
        in
        check_int "slots" 2 plan.Plan.nslots;
        match plan.Plan.steps with
        | [ _; Plan.Match { peer = Plan.Name_slot 0; _ } ] -> ()
        | _ -> Alcotest.fail "expected the peer to reference slot 0");
    tc "constants compile to Fixed and Const" (fun () ->
        let plan = Plan.compile (Parser.parse_rule "h@p($x) :- m@q(1, $x)") in
        match plan.Plan.steps with
        | [ Plan.Match { rel = Plan.Fixed "m"; peer = Plan.Fixed "q";
                         args = [| Plan.Const (Value.Int 1); Plan.Slot _ |]; _ } ] ->
          ()
        | _ -> Alcotest.fail "unexpected compilation");
    tc "instantiate_args needs every slot bound" (fun () ->
        let args = [| Plan.Const (Value.Int 7); Plan.Slot 0 |] in
        check_bool "unbound" (Plan.instantiate_args args [| None |] = None);
        check_bool "bound"
          (Plan.instantiate_args args [| Some (Value.Int 3) |]
          = Some [| Value.Int 7; Value.Int 3 |]));
    tc "subst_of_env maps bound slots back to variable names" (fun () ->
        let plan = Plan.compile (Parser.parse_rule "h@p($x, $y) :- m@p($x, $y)") in
        let env = [| Some (Value.Int 1); None |] in
        let s = Plan.subst_of_env plan env in
        check_bool "x" (Subst.find "x" s = Some (Value.Int 1));
        check_bool "y free" (Subst.find "y" s = None));
    tc "eval_cexpr matches Expr.eval" (fun () ->
        let plan =
          Plan.compile (Parser.parse_rule "h@p($z) :- n@p($x), $z := $x * 2 + 1")
        in
        match plan.Plan.steps with
        | [ _; Plan.Assign (_, ce, _) ] -> (
          let env = Array.make plan.Plan.nslots None in
          env.(0) <- Some (Value.Int 5);
          match Plan.eval_cexpr ce env ~slot_names:plan.Plan.slot_names with
          | Ok (Value.Int 11) -> ()
          | Ok v -> Alcotest.fail ("got " ^ Value.to_string v)
          | Error _ -> Alcotest.fail "eval failed")
        | _ -> Alcotest.fail "unexpected steps");
    tc "premise patterns keep only positive atoms" (fun () ->
        let plan =
          Plan.compile
            (Parser.parse_rule
               "h@p($x) :- a@p($x), not b@p($x), $x > 0, c@p($x)")
        in
        check_int "two premises" 2 (List.length plan.Plan.premise_patterns));
    tc "order_body: constant stats reproduce the WDL031 hint" (fun () ->
        (* Remote literal first as written; both local literals are
           eligible to hoist. With flat statistics the planner must
           produce exactly what the lint suggests. *)
        let r =
          Parser.parse_rule
            "h@p($x,$y) :- r@q($x), a@p($x), b@p($x,$y)"
        in
        let planned = Plan.order_body ~self:"p" ~stats:(fun _ -> 1) r in
        let hint =
          match Wdl_analysis.Boundary.improve ~self:"p" r with
          | Some i -> i.Wdl_analysis.Boundary.reordered
          | None -> Alcotest.fail "expected a WDL031 improvement"
        in
        check_bool "same rule" (Rule.equal planned hint));
    tc "order_body: cardinality growth flips the join order" (fun () ->
        let r =
          Parser.parse_rule
            "h@p($x,$y) :- r@q($x), a@p($x), b@p($x,$y)"
        in
        let body_rels rule =
          List.filter_map
            (function
              | Literal.Pos a -> (
                match a.Atom.rel with Term.Const (Value.String n) -> Some n | _ -> None)
              | _ -> None)
            rule.Rule.body
        in
        (* a tiny, b large: scan a first, probe b on the bound $x. *)
        let small =
          Plan.order_body ~self:"p"
            ~stats:(function "a" -> 4 | "b" -> 4096 | _ -> 0)
            r
        in
        Alcotest.(check (list string))
          "a leads" [ "a"; "b"; "r" ] (body_rels small);
        (* a grown past b: the planner now leads with b. *)
        let grown =
          Plan.order_body ~self:"p"
            ~stats:(function "a" -> 100_000 | "b" -> 4096 | _ -> 0)
            r
        in
        Alcotest.(check (list string))
          "b leads" [ "b"; "a"; "r" ] (body_rels grown));
  ]
