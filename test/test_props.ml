(* Property-based tests (qcheck) on the core data structures and on the
   engine's equivalences. *)
open Wdl_syntax
open Wdl_store

let ident_gen =
  QCheck.Gen.(
    let* len = int_range 1 8 in
    let* chars = list_size (return len) (char_range 'a' 'z') in
    let s = String.init len (List.nth chars) in
    (* avoid keywords *)
    return (if Term.is_ident s then s else "k" ^ s))

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Value.Int n) small_signed_int);
        (2, map (fun s -> Value.String s) (string_size ~gen:printable (int_range 0 12)));
        (2, map (fun f -> Value.Float f)
             (map (fun n -> float_of_int n /. 16.) small_signed_int));
        (1, map (fun b -> Value.Bool b) bool);
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let fact_gen =
  QCheck.Gen.(
    let* rel = ident_gen in
    let* peer = ident_gen in
    let* args = list_size (int_range 0 5) value_gen in
    return (Fact.make ~rel ~peer args))

let fact_arb = QCheck.make ~print:(Format.asprintf "%a" Fact.pp) fact_gen

let term_gen =
  QCheck.Gen.(
    frequency
      [ (2, map (fun v -> Term.Const v) value_gen);
        (2, map (fun x -> Term.Var x) ident_gen) ])

let name_term_gen =
  QCheck.Gen.(
    frequency
      [ (3, map Term.str ident_gen); (1, map (fun x -> Term.Var x) ident_gen) ])

let atom_gen =
  QCheck.Gen.(
    let* rel = name_term_gen in
    let* peer = name_term_gen in
    let* args = list_size (int_range 0 4) term_gen in
    return (Atom.make ~rel ~peer args))

let literal_gen =
  QCheck.Gen.(
    frequency
      [ (4, map (fun a -> Literal.Pos a) atom_gen);
        (1, map (fun a -> Literal.Neg a) atom_gen);
        ( 1,
          let* x = ident_gen in
          let* v = value_gen in
          return (Literal.Cmp (Literal.Lt, Expr.Var x, Expr.Const v)) );
        ( 1,
          let* x = ident_gen in
          let* v = value_gen in
          return (Literal.Assign (x, Expr.Add (Expr.Const v, Expr.Const (Value.Int 1)))) )
      ])

(* Arbitrary rules (not necessarily safe): printer/parser and wire codec
   must round-trip anything the AST can hold. *)
let rule_gen =
  QCheck.Gen.(
    let* head = atom_gen in
    let* body = list_size (int_range 1 4) literal_gen in
    let* agg = bool in
    match head.Atom.args with
    | Term.Var v :: _ when agg ->
      let* op =
        oneofl Aggregate.[ Count; Sum; Min; Max; Avg ]
      in
      return (Rule.make_agg ~aggs:[ (0, { Aggregate.op; var = v }) ] ~head ~body)
    | _ -> return (Rule.make ~head ~body))

let rule_arb = QCheck.make ~print:(Format.asprintf "%a" Rule.pp) rule_gen

let message_gen =
  QCheck.Gen.(
    let* src = ident_gen in
    let* dst = ident_gen in
    let* stage = int_range 0 1000 in
    let* facts =
      frequency
        [ (1, return None); (3, map Option.some (list_size (int_range 0 5) fact_gen)) ]
    in
    let* installs = list_size (int_range 0 3) rule_gen in
    let* retracts = list_size (int_range 0 3) rule_gen in
    return (Webdamlog.Message.make ~src ~dst ~stage ~facts ~installs ~retracts ()))

let message_arb =
  QCheck.make ~print:(Format.asprintf "%a" Webdamlog.Message.pp) message_gen

let policy_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Webdamlog.Authz.Everyone);
        (3, map (fun l -> Webdamlog.Authz.Only l) (list_size (int_range 0 4) ident_gen)) ])

let policy_arb =
  QCheck.make ~print:(Format.asprintf "%a" Webdamlog.Authz.pp_policy) policy_gen

let edges_gen =
  QCheck.Gen.(
    let* n = int_range 2 12 in
    let* m = int_range 1 30 in
    let* pairs = list_size (return m) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return pairs)

let tests =
  [
    QCheck.Test.make ~count:500 ~name:"value pp/parse round-trip" value_arb
      (fun v ->
        let src = Format.asprintf "m@p(%a)" Value.pp v in
        match (Parser.parse_fact src).Fact.args with
        | [ v' ] -> Value.equal v v'
        | _ -> false);
    QCheck.Test.make ~count:300 ~name:"fact pp/parse round-trip" fact_arb
      (fun f ->
        let printed = Format.asprintf "%a" Fact.pp f in
        Fact.equal f (Parser.parse_fact printed));
    QCheck.Test.make ~count:300 ~name:"value compare is antisymmetric"
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        let c1 = Value.compare a b and c2 = Value.compare b a in
        (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0));
    QCheck.Test.make ~count:300 ~name:"value compare is transitive"
      (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
        let sorted = List.sort Value.compare [ a; b; c ] in
        match sorted with
        | [ x; y; z ] ->
          Value.compare x y <= 0 && Value.compare y z <= 0
          && Value.compare x z <= 0
        | _ -> false);
    QCheck.Test.make ~count:300 ~name:"equal values hash equally"
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        (not (Value.equal a b)) || Value.hash a = Value.hash b);
    QCheck.Test.make ~count:200 ~name:"tuple equal implies equal hash"
      (QCheck.pair (QCheck.list value_arb) (QCheck.list value_arb))
      (fun (a, b) ->
        let ta = Tuple.of_list a and tb = Tuple.of_list b in
        (not (Tuple.equal ta tb)) || Tuple.hash ta = Tuple.hash tb);
    QCheck.Test.make ~count:200 ~name:"subst apply is idempotent"
      (QCheck.pair (QCheck.list (QCheck.pair (QCheck.make ident_gen) value_arb))
         (QCheck.make ident_gen))
      (fun (bindings, x) ->
        match Subst.of_list bindings with
        | None -> true
        | Some s ->
          let t = Term.Var x in
          Term.equal (Subst.apply s (Subst.apply s t)) (Subst.apply s t));
    QCheck.Test.make ~count:100
      ~name:"relation behaves like a set under random insert/delete"
      (QCheck.list
         (QCheck.pair QCheck.bool (QCheck.make (QCheck.Gen.int_range 0 20))))
      (fun ops ->
        let r = Relation.create ~arity:1 () in
        let reference = Hashtbl.create 16 in
        List.iter
          (fun (ins, v) ->
            let tuple = Tuple.of_list [ Value.Int v ] in
            if ins then begin
              ignore (Relation.insert r tuple);
              Hashtbl.replace reference v ()
            end
            else begin
              ignore (Relation.delete r tuple);
              Hashtbl.remove reference v
            end)
          ops;
        Relation.cardinal r = Hashtbl.length reference
        && Hashtbl.fold
             (fun v () acc ->
               acc && Relation.mem r (Tuple.of_list [ Value.Int v ]))
             reference true);
    QCheck.Test.make ~count:50 ~name:"indexed lookup equals scan"
      (QCheck.make edges_gen) (fun edges ->
        let mk indexing =
          let r = Relation.create ~indexing ~arity:2 () in
          List.iter
            (fun (a, b) ->
              ignore (Relation.insert r (Tuple.of_list [ Value.Int a; Value.Int b ])))
            edges;
          r
        in
        let indexed = mk true and plain = mk false in
        List.for_all
          (fun key ->
            let collect r =
              let acc = ref [] in
              Relation.lookup r [ (0, Value.Int key) ] (fun t -> acc := t :: !acc);
              List.sort Tuple.compare !acc
            in
            List.equal Tuple.equal (collect indexed) (collect plain))
          (List.init 12 (fun i -> i)));
    QCheck.Test.make ~count:50 ~name:"seminaive equals naive on random TC"
      (QCheck.make edges_gen) (fun edges ->
        let mk strategy =
          let db = Database.create () in
          ignore
            (Database.declare db
               (Decl.make ~kind:Decl.Intensional ~rel:"tc" ~peer:"p" [ "x"; "y" ]));
          List.iter
            (fun (a, b) ->
              ignore
                (Database.insert db ~rel:"edge"
                   (Tuple.of_list [ Value.Int a; Value.Int b ])))
            edges;
          let rules =
            [ Parser.parse_rule "tc@p($x,$y) :- edge@p($x,$y)";
              Parser.parse_rule "tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z)" ]
          in
          match Wdl_eval.Fixpoint.run ~strategy ~self:"p" db rules with
          | Ok _ ->
            (match Database.find db "tc" with
            | Some info -> Relation.to_sorted_list info.Database.data
            | None -> [])
          | Error _ -> []
        in
        List.equal Tuple.equal
          (mk Wdl_eval.Fixpoint.Seminaive)
          (mk Wdl_eval.Fixpoint.Naive));
    QCheck.Test.make ~count:30
      ~name:"distributed view equals the centralised join"
      (QCheck.make
         QCheck.Gen.(
           pair
             (list_size (int_range 0 6) (int_range 0 4))
             (list_size (int_range 0 10) (pair (int_range 0 4) small_nat))))
      (fun (selected, pictures) ->
        (* selected: which owners Jules selects; pictures: (owner, id). *)
        let owner i = Printf.sprintf "owner%d" i in
        let sys = Webdamlog.System.create () in
        let jules = Webdamlog.System.add_peer sys "Jules" in
        (match
           Webdamlog.Peer.load_string jules
             {|ext selectedAttendee@Jules(a); int view@Jules(o, i);
               view@Jules($a, $i) :- selectedAttendee@Jules($a), pics@$a($i);|}
         with
        | Ok () -> ()
        | Error e -> failwith e);
        for i = 0 to 4 do
          ignore (Webdamlog.System.add_peer sys (owner i))
        done;
        List.iter
          (fun o ->
            match
              Webdamlog.Peer.insert jules
                (Fact.make ~rel:"selectedAttendee" ~peer:"Jules"
                   [ Value.String (owner o) ])
            with
            | Ok () -> ()
            | Error e -> failwith e)
          selected;
        List.iter
          (fun (o, id) ->
            match
              Webdamlog.Peer.insert
                (Webdamlog.System.peer sys (owner o))
                (Fact.make ~rel:"pics" ~peer:(owner o) [ Value.Int id ])
            with
            | Ok () -> ()
            | Error e -> failwith e)
          pictures;
        (match Webdamlog.System.run sys with
        | Ok _ -> ()
        | Error e -> failwith e);
        let expected =
          List.sort_uniq compare
            (List.concat_map
               (fun (o, id) ->
                 if List.mem o selected then [ (owner o, id) ] else [])
               pictures)
        in
        let got =
          List.sort_uniq compare
            (List.filter_map
               (fun (f : Fact.t) ->
                 match f.Fact.args with
                 | [ Value.String o; Value.Int i ] -> Some (o, i)
                 | _ -> None)
               (Webdamlog.Peer.query jules "view"))
        in
        expected = got);
    QCheck.Test.make ~count:300 ~name:"rule pp/parse round-trip" rule_arb
      (fun r ->
        let printed = Format.asprintf "%a" Rule.pp r in
        Rule.equal r (Parser.parse_rule printed));
    QCheck.Test.make ~count:200 ~name:"wire codec round-trips any message"
      message_arb (fun m ->
        match Webdamlog.Wire.decode (Webdamlog.Wire.encode m) with
        | Error _ -> false
        | Ok m' ->
          m.Webdamlog.Message.src = m'.Webdamlog.Message.src
          && m.Webdamlog.Message.dst = m'.Webdamlog.Message.dst
          && m.Webdamlog.Message.stage = m'.Webdamlog.Message.stage
          && Option.equal (List.equal Fact.equal) m.Webdamlog.Message.facts
               m'.Webdamlog.Message.facts
          && List.equal Rule.equal m.Webdamlog.Message.installs
               m'.Webdamlog.Message.installs
          && List.equal Rule.equal m.Webdamlog.Message.retracts
               m'.Webdamlog.Message.retracts);
    QCheck.Test.make ~count:300 ~name:"authz meet is commutative and idempotent"
      (QCheck.pair policy_arb policy_arb) (fun (a, b) ->
        Webdamlog.Authz.policy_equal
          (Webdamlog.Authz.meet a b)
          (Webdamlog.Authz.meet b a)
        && Webdamlog.Authz.policy_equal (Webdamlog.Authz.meet a a) a);
    QCheck.Test.make ~count:300 ~name:"authz meet is associative with Everyone as unit"
      (QCheck.triple policy_arb policy_arb policy_arb) (fun (a, b, c) ->
        let open Webdamlog.Authz in
        policy_equal (meet a (meet b c)) (meet (meet a b) c)
        && policy_equal (meet a Everyone) a);
    QCheck.Test.make ~count:300 ~name:"meet only shrinks access"
      (QCheck.triple policy_arb policy_arb (QCheck.make ident_gen))
      (fun (a, b, reader) ->
        let open Webdamlog.Authz in
        (not (allows (meet a b) reader)) || (allows a reader && allows b reader));
    QCheck.Test.make ~count:200 ~name:"aggregates agree with list folds"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 20)
         (QCheck.make QCheck.Gen.small_signed_int))
      (fun ints ->
        let vs = List.map (fun n -> Value.Int n) ints in
        let open Wdl_syntax.Aggregate in
        apply Count vs = Ok (Value.Int (List.length ints))
        && apply Sum vs = Ok (Value.Int (List.fold_left ( + ) 0 ints))
        && apply Min vs = Ok (Value.Int (List.fold_left min max_int ints))
        && apply Max vs = Ok (Value.Int (List.fold_left max min_int ints)));
    QCheck.Test.make ~count:100 ~name:"snapshots are stable under restore"
      (QCheck.make edges_gen) (fun edges ->
        let p = Webdamlog.Peer.create "p" in
        (match
           Webdamlog.Peer.load_string p
             "int tc@p(x,y); tc@p($x,$y) :- edge@p($x,$y); tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z);"
         with
        | Ok () -> ()
        | Error e -> failwith e);
        List.iter
          (fun (a, b) ->
            match
              Webdamlog.Peer.insert p
                (Fact.make ~rel:"edge" ~peer:"p" [ Value.Int a; Value.Int b ])
            with
            | Ok () -> ()
            | Error e -> failwith e)
          edges;
        ignore (Webdamlog.Peer.stage p);
        let s1 = Webdamlog.Peer.snapshot p in
        match Webdamlog.Peer.restore s1 with
        | Error _ -> false
        | Ok p' -> Webdamlog.Peer.snapshot p' = s1);
    QCheck.Test.make ~count:30 ~name:"stage determinism"
      (QCheck.make edges_gen) (fun edges ->
        let run () =
          let p = Webdamlog.Peer.create "p" in
          (match
             Webdamlog.Peer.load_string p
               "int tc@p(x,y); tc@p($x,$y) :- edge@p($x,$y); tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z);"
           with
          | Ok () -> ()
          | Error e -> failwith e);
          List.iter
            (fun (a, b) ->
              match
                Webdamlog.Peer.insert p
                  (Fact.make ~rel:"edge" ~peer:"p" [ Value.Int a; Value.Int b ])
              with
              | Ok () -> ()
              | Error e -> failwith e)
            edges;
          ignore (Webdamlog.Peer.stage p);
          List.map (Format.asprintf "%a" Fact.pp) (Webdamlog.Peer.query p "tc")
        in
        run () = run ());
    (* Differential oracle for the columnar store: drive it and a naive
       list model through the same random schedule of inserts, deletes
       and single-column lookups, checking every return value and the
       final contents. The small value domain forces duplicate inserts,
       deletes of absent tuples, and slot reuse after tombstones. *)
    QCheck.Test.make ~count:200
      ~name:"columnar store equals a naive list model"
      (QCheck.list
         (QCheck.triple
            (QCheck.make (QCheck.Gen.int_range 0 2))
            (QCheck.make (QCheck.Gen.int_range 0 6))
            (QCheck.make (QCheck.Gen.int_range 0 6))))
      (fun ops ->
        let r = Relation.create ~arity:2 () in
        let model = ref [] in
        let tup (a, b) = Tuple.of_list [ Value.Int a; Value.Int b ] in
        let ok = ref true in
        List.iter
          (fun (op, a, b) ->
            match op with
            | 0 ->
              let fresh = Relation.insert r (tup (a, b)) in
              let model_fresh = not (List.mem (a, b) !model) in
              if model_fresh then model := (a, b) :: !model;
              if fresh <> model_fresh then ok := false
            | 1 ->
              let removed = Relation.delete r (tup (a, b)) in
              let model_removed = List.mem (a, b) !model in
              model := List.filter (fun p -> p <> (a, b)) !model;
              if removed <> model_removed then ok := false
            | _ ->
              let acc = ref [] in
              Relation.lookup r [ (0, Value.Int a) ] (fun t ->
                  acc := t :: !acc);
              let got = List.sort Tuple.compare !acc in
              let want =
                List.sort Tuple.compare
                  (List.filter_map
                     (fun (x, y) -> if x = a then Some (tup (x, y)) else None)
                     !model)
              in
              if not (List.equal Tuple.equal got want) then ok := false)
          ops;
        !ok
        && Relation.cardinal r = List.length !model
        && List.for_all (fun p -> Relation.mem r (tup p)) !model
        && List.equal Tuple.equal
             (Relation.to_sorted_list r)
             (List.sort Tuple.compare (List.map tup !model)));
    QCheck.Test.make ~count:500 ~name:"intern round-trips every value"
      (QCheck.make
         QCheck.Gen.(
           frequency
             [ (3, value_gen);
               ( 1,
                 map
                   (fun s -> Value.String s)
                   (oneofl
                      [ ""; "héllo"; "日本語"; "🦉 chouette"; "a\tb\nc";
                        "\xc3\xa9"; String.make 200 '\xff' ]) ) ]))
      (fun v ->
        let pool = Intern.create () in
        let id = Intern.intern pool v in
        Intern.intern pool v = id
        && Intern.find pool v = Some id
        && Value.equal (Intern.value pool id) v
        && Intern.size pool = 1);
  ]

let suite = List.map QCheck_alcotest.to_alcotest tests
