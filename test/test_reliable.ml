(* Reliable session layer: exactly-once delivery over faulty links, and
   crash recovery of a peer from its journal. *)
open Wdl_syntax
open Wdl_net
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

(* {1 Transport-level unit tests} *)

(* An Inmem that silently eats the first [n] sends — deterministic
   loss, unlike Simnet's seeded coin. *)
let drop_first n =
  let inner : 'a Transport.t = Inmem.create () in
  let dropped = ref 0 in
  {
    inner with
    Transport.send =
      (fun ~src ~dst m ->
        if !dropped < n then incr dropped
        else inner.Transport.send ~src ~dst m);
  }

let fast = { Reliable.default_config with rto = 1.0; rto_jitter = 0. }

let unit_tests =
  [
    tc "lost message is retransmitted, delivered once, then acked" (fun () ->
        let t, ctl = Reliable.wrap ~config:fast (drop_first 1) in
        t.Transport.send ~src:"a" ~dst:"b" "x";
        check_int "eaten" 0 (List.length (t.Transport.drain "b"));
        check_int "unacked" 1 (Reliable.unacked ctl);
        t.Transport.advance 1.1;
        Alcotest.check (Alcotest.list Alcotest.string) "retransmitted" [ "x" ]
          (t.Transport.drain "b");
        check_int "once only" 0 (List.length (t.Transport.drain "b"));
        (* b's cumulative ack rides a pure-ack frame drained by a. *)
        ignore (t.Transport.drain "a");
        check_int "acked" 0 (Reliable.unacked ctl);
        let s = t.Transport.stats () in
        check_int "retransmits counted" 1 s.Netstats.retransmits;
        check_int "ack counted" 1 s.Netstats.acked);
    tc "duplicated copies are deduped" (fun () ->
        let inner = Simnet.create ~jitter:0. ~duplicate:1.0 () in
        let t, _ = Reliable.wrap ~config:fast inner in
        t.Transport.send ~src:"a" ~dst:"b" 7;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "one copy" [ 7 ]
          (t.Transport.drain "b");
        check_bool "dup counted" ((t.Transport.stats ()).Netstats.dup_dropped >= 1));
    tc "per-link FIFO survives inner reordering" (fun () ->
        (* Heavy jitter reorders Simnet's deliveries within the link;
           the sequence numbers restore send order. *)
        let inner = Simnet.create ~seed:3 ~base_latency:1.0 ~jitter:0.9 () in
        let t, _ = Reliable.wrap ~config:fast inner in
        for i = 1 to 8 do
          t.Transport.send ~src:"a" ~dst:"b" i
        done;
        let got = ref [] in
        for _ = 1 to 30 do
          t.Transport.advance 0.2;
          got := !got @ t.Transport.drain "b"
        done;
        Alcotest.check (Alcotest.list Alcotest.int) "in order"
          [ 1; 2; 3; 4; 5; 6; 7; 8 ] !got);
    tc "acks piggyback on reverse traffic" (fun () ->
        let t, ctl = Reliable.wrap ~config:fast (Inmem.create ()) in
        t.Transport.send ~src:"a" ~dst:"b" "ping";
        ignore (t.Transport.drain "b");
        t.Transport.send ~src:"b" ~dst:"a" "pong";
        (* a's drain processes the cumulative ack riding on "pong" (and
           the pure ack b emitted) — only "pong" itself stays unacked. *)
        ignore (t.Transport.drain "a");
        check_int "ping acked" 1 (Reliable.unacked ctl);
        ignore (t.Transport.drain "b");
        check_int "all quiet" 0 (Reliable.unacked ctl));
    tc "give-up surfaces a dead peer instead of blocking forever" (fun () ->
        (* "ghost" never drains, so nothing is ever acked. *)
        let t, ctl =
          Reliable.wrap
            ~config:{ fast with max_attempts = 3; max_rto = 2.0 }
            (Inmem.create ())
        in
        let died = ref [] in
        Reliable.on_dead ctl (fun ~src ~dst -> died := (src, dst) :: !died);
        t.Transport.send ~src:"a" ~dst:"ghost" "lost cause";
        for _ = 1 to 20 do
          t.Transport.advance 1.0
        done;
        check_bool "dead link signalled" (!died = [ ("a", "ghost") ]);
        check_bool "listed" (Reliable.dead_links ctl = [ ("a", "ghost") ]);
        check_int "window dropped, system can quiesce" 0
          (Reliable.unacked ctl);
        check_bool "counted as failures"
          ((t.Transport.stats ()).Netstats.send_failures >= 1);
        Reliable.revive ctl ~src:"a" ~dst:"ghost";
        check_bool "revived" (Reliable.dead_links ctl = []));
    tc "bounded send window parks excess sends, promotes on ack" (fun () ->
        (* Block-sender backpressure: only [max_window] envelopes may be
           in flight per link; the rest wait in the overflow queue and
           are promoted as acks open the window.  Nothing is dropped. *)
        let t, ctl =
          Reliable.wrap ~config:{ fast with max_window = 2 } (Inmem.create ())
        in
        for i = 1 to 5 do
          t.Transport.send ~src:"a" ~dst:"b" i
        done;
        check_int "window holds two" 2 (Reliable.unacked ctl);
        check_int "three parked" 3 (Reliable.queued ctl);
        check_int "stalls counted" 3 ((t.Transport.stats ()).Netstats.stalled);
        let got = ref [] in
        let steps = ref 0 in
        while t.Transport.pending () > 0 && !steps < 50 do
          incr steps;
          t.Transport.advance 1.0;
          got := !got @ t.Transport.drain "b";
          ignore (t.Transport.drain "a")
        done;
        Alcotest.check (Alcotest.list Alcotest.int) "all delivered, in order"
          [ 1; 2; 3; 4; 5 ] !got;
        check_int "nothing left parked" 0 (Reliable.queued ctl));
    tc "bounded reorder buffer sheds far frames; retransmits recover"
      (fun () ->
        (* With at most one held frame, heavily jittered deliveries
           overflow the reorder buffer and are shed — the retransmit
           path must still produce complete in-order delivery. *)
        let inner = Simnet.create ~seed:3 ~base_latency:1.0 ~jitter:0.9 () in
        let t, _ = Reliable.wrap ~config:{ fast with max_held = 1 } inner in
        for i = 1 to 8 do
          t.Transport.send ~src:"a" ~dst:"b" i
        done;
        let got = ref [] in
        for _ = 1 to 80 do
          t.Transport.advance 0.3;
          got := !got @ t.Transport.drain "b";
          ignore (t.Transport.drain "a")
        done;
        Alcotest.check (Alcotest.list Alcotest.int) "in order, complete"
          [ 1; 2; 3; 4; 5; 6; 7; 8 ] !got;
        check_bool "drops counted"
          ((t.Transport.stats ()).Netstats.reorder_dropped > 0));
    tc "forget clears both sides of a link so a reused name starts fresh"
      (fun () ->
        let t, ctl = Reliable.wrap ~config:fast (Inmem.create ()) in
        t.Transport.send ~src:"a" ~dst:"b" "old-1";
        t.Transport.send ~src:"a" ~dst:"b" "old-2";
        Alcotest.check (Alcotest.list Alcotest.string) "old incarnation"
          [ "old-1"; "old-2" ] (t.Transport.drain "b");
        Reliable.forget ctl "b";
        check_int "unacked state dropped" 0 (Reliable.unacked ctl);
        (* The next incarnation restarts at seq 1 — with stale receiver
           state (delivered = 2) this would be deduped as a duplicate. *)
        t.Transport.send ~src:"a" ~dst:"b" "new-1";
        Alcotest.check (Alcotest.list Alcotest.string) "fresh seq accepted"
          [ "new-1" ] (t.Transport.drain "b"));
    tc "give-up increments the dead-links metric" (fun () ->
        let sum name =
          List.fold_left
            (fun acc s ->
              if s.Wdl_obs.Obs.s_name = name then
                match s.Wdl_obs.Obs.s_value with
                | `Value v when not (Float.is_nan v) -> acc +. v
                | `Value _ | `Histogram _ -> acc
              else acc)
            0. (Wdl_obs.Obs.collect ())
        in
        let before = sum "wdl_net_dead_links_total" in
        let t, _ =
          Reliable.wrap
            ~config:{ fast with max_attempts = 2; max_rto = 1.0 }
            (Inmem.create ())
        in
        t.Transport.send ~src:"a" ~dst:"ghost" "x";
        for _ = 1 to 10 do
          t.Transport.advance 1.0
        done;
        check_bool "metric grew"
          (sum "wdl_net_dead_links_total" >= before +. 1.));
    tc "wire envelope codec round-trips" (fun () ->
        let m =
          Message.make ~src:"Jules" ~dst:"Émilien" ~stage:2
            ~facts:(Some [ Fact.make ~rel:"p" ~peer:"Émilien" [ Value.Int 1 ] ])
            ()
        in
        let e =
          {
            Reliable.env_src = "Jules";
            env_seq = 5;
            env_ack = 3;
            env_payload = Some m;
          }
        in
        let e' = ok' (Wire.decode_envelope (Wire.encode_envelope e)) in
        check_bool "src" (e'.Reliable.env_src = "Jules");
        check_int "seq" 5 e'.Reliable.env_seq;
        check_int "ack" 3 e'.Reliable.env_ack;
        check_bool "payload survives"
          (match e'.Reliable.env_payload with
          | Some m' -> m'.Message.src = m.Message.src
          | None -> false);
        let a = { e with Reliable.env_seq = 0; env_payload = None } in
        let a' = ok' (Wire.decode_envelope (Wire.encode_envelope a)) in
        check_bool "pure ack" (a'.Reliable.env_payload = None);
        check_bool "garbage rejected"
          (Result.is_error (Wire.decode_envelope "nope")));
    tc "reliable over tcp + wire: ack crosses processes" (fun () ->
        let bytes_a, ca = Tcp.create () in
        let bytes_b, cb = Tcp.create () in
        Tcp.register ca ~peer:"bob"
          { Tcp.host = "127.0.0.1"; port = Tcp.port cb };
        Tcp.register cb ~peer:"alice"
          { Tcp.host = "127.0.0.1"; port = Tcp.port ca };
        let ta, ctl_a = Reliable.wrap (Wire.envelope_transport bytes_a) in
        let tb, _ = Reliable.wrap (Wire.envelope_transport bytes_b) in
        let m = Message.make ~src:"alice" ~dst:"bob" ~stage:1 () in
        ta.Transport.send ~src:"alice" ~dst:"bob" m;
        check_int "delivered at bob" 1 (List.length (tb.Transport.drain "bob"));
        check_int "dedup on redrain" 0 (List.length (tb.Transport.drain "bob"));
        ignore (ta.Transport.drain "alice");
        check_int "acked across sockets" 0 (Reliable.unacked ctl_a);
        Tcp.close ca;
        Tcp.close cb);
  ]

(* {1 Whole-system convergence under fault schedules} *)

let envelope_sizer e =
  match e.Reliable.env_payload with Some m -> Message.size m | None -> 8

(* The album/attendee delegation scenario (the paper's Wepic shape):
   sigmod aggregates every attendee's pictures into the album; each
   attendee mirrors the album back. Delegations flow both ways and
   fact batches cross every link. *)
let load_album sys attendees =
  let sigmod = System.add_peer sys "sigmod" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "ext attendee@sigmod(a);\nint album@sigmod(id, name, owner);\n";
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "attendee@sigmod(%S);\n" a))
    attendees;
  Buffer.add_string buf
    "album@sigmod($i, $n, $a) :- attendee@sigmod($a), pictures@$a($i, $n);\n";
  ok' (Peer.load_string sigmod (Buffer.contents buf));
  List.iter
    (fun a ->
      let p = System.add_peer sys a in
      ok'
        (Peer.load_string p
           (Printf.sprintf
              {|ext pictures@%s(id, name);
                int myAlbum@%s(id, name, owner);
                pictures@%s(1, "%s_1.jpg");
                pictures@%s(2, "%s_2.jpg");
                myAlbum@%s($i, $n, $o) :- album@sigmod($i, $n, $o);|}
              a a a a a a a)))
    attendees

(* Byte dump of every relation at every peer, canonically ordered. *)
let dump sys =
  let buf = Buffer.create 1024 in
  let peers =
    List.sort
      (fun p q -> String.compare (Peer.name p) (Peer.name q))
      (System.peers sys)
  in
  List.iter
    (fun p ->
      Buffer.add_string buf ("== " ^ Peer.name p ^ "\n");
      List.iter
        (fun rel ->
          List.iter
            (fun f ->
              Buffer.add_string buf (Format.asprintf "%a" Fact.pp f);
              Buffer.add_char buf '\n')
            (Peer.query p rel))
        (List.sort String.compare (Peer.relation_names p)))
    peers;
  Buffer.contents buf

let attendees = [ "alice"; "bob"; "carol" ]

let reference_dump () =
  let sys = System.create () in
  load_album sys attendees;
  ignore (ok' (System.run sys));
  dump sys

(* One faulty run: loss + duplication + a mid-run partition that heals. *)
let faulty_run ~seed ~loss ~duplicate ~part_at ~part_len =
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed ~loss ~duplicate ()
  in
  let transport, rctl = Reliable.wrap ~seed:(seed + 1) inner in
  let sys = System.create ~transport ~drop_unknown:true () in
  load_album sys attendees;
  for _ = 1 to part_at do
    ignore (System.round sys)
  done;
  Simnet.partition net ~between:"sigmod" ~and_:"alice";
  for _ = 1 to part_len do
    ignore (System.round sys)
  done;
  Simnet.heal net ~between:"sigmod" ~and_:"alice";
  match System.run ~max_rounds:5000 sys with
  | Error e -> Error e
  | Ok _ ->
    if Reliable.dead_links rctl <> [] then Error "gave up on a live link"
    else Ok (dump sys, Reliable.stats rctl)

let convergence_prop =
  QCheck.Test.make ~count:12
    ~name:"random loss/dup/partition schedules reach the Inmem fixpoint"
    QCheck.(
      make
        Gen.(
          let* seed = int_range 1 10_000 in
          let* loss = float_range 0.0 0.4 in
          let* duplicate = float_range 0.0 0.3 in
          let* part_at = int_range 1 8 in
          let* part_len = int_range 1 30 in
          return (seed, loss, duplicate, part_at, part_len)))
    (fun (seed, loss, duplicate, part_at, part_len) ->
      let expected = reference_dump () in
      match faulty_run ~seed ~loss ~duplicate ~part_at ~part_len with
      | Error e -> QCheck.Test.fail_reportf "did not converge: %s" e
      | Ok (got, _) ->
        if got <> expected then
          QCheck.Test.fail_reportf "diverged under faults:@.%s@.vs@.%s" got
            expected
        else true)

let acceptance =
  tc "20% loss + 10% dup + partition converges; faults were exercised"
    (fun () ->
      let expected = reference_dump () in
      match
        faulty_run ~seed:42 ~loss:0.25 ~duplicate:0.10 ~part_at:3 ~part_len:12
      with
      | Error e -> Alcotest.fail e
      | Ok (got, stats) ->
        Alcotest.check Alcotest.string "byte-identical contents" expected got;
        check_bool "retransmits nonzero" (stats.Netstats.retransmits > 0);
        check_bool "dup_dropped nonzero" (stats.Netstats.dup_dropped > 0))

(* {1 Crash + journal recovery} *)

let temp_dir () =
  let d = Filename.temp_file "wdl_reliable" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* bob receives album entries into an EXTENSIONAL inbox (journaled), so
   a crash between checkpoints loses nothing the journal saw. *)
let load_crash_scenario sys =
  load_album sys [ "alice"; "bob" ];
  ok'
    (Peer.load_string (System.peer sys "bob") "ext inbox@bob(id, name);");
  ok'
    (Peer.load_string (System.peer sys "sigmod")
       "inbox@bob($i, $n) :- album@sigmod($i, $n, $o);")

let crash_test () =
  let dir = temp_dir () in
  (* Reference: the same script with no crash, on Inmem. *)
  let ref_sys = System.create () in
  load_crash_scenario ref_sys;
  ignore (ok' (System.run ref_sys));
  ok'
    (Peer.insert (System.peer ref_sys "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 3; Value.String "alice_3.jpg" ]));
  ignore (ok' (System.run ref_sys));
  ok'
    (Peer.insert (System.peer ref_sys "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 4; Value.String "alice_4.jpg" ]));
  ignore (ok' (System.run ref_sys));
  let expected = dump ref_sys in

  (* Faulty twin: lossy reliable simnet; bob journals, crashes after
     the first upload, recovers from checkpoint + journal tail. *)
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed:7 ~loss:0.2
      ~duplicate:0.1 ()
  in
  let transport, _rctl = Reliable.wrap inner in
  (* drop_unknown must stay off: while bob is crashed (unregistered),
     messages to him must enter the transport and be retransmitted
     until he returns — dropping them at the system layer would lose
     the batch forever (it is only re-sent on change). *)
  let sys = System.create ~transport ~drop_unknown:false () in
  load_crash_scenario sys;
  Persist.attach (System.peer sys "bob") ~dir;
  ignore (ok' (System.run sys));
  Persist.checkpoint (System.peer sys "bob") ~dir;

  (* Post-checkpoint activity lands in bob's journal only. *)
  ok'
    (Peer.insert (System.peer sys "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 3; Value.String "alice_3.jpg" ]));
  ignore (ok' (System.run sys));
  let inbox_before = List.length (Peer.query (System.peer sys "bob") "inbox") in
  check_bool "bob saw post-checkpoint traffic" (inbox_before > 0);

  (* Crash: the process dies (peer object discarded, inbox lost). *)
  Simnet.crash net "bob";
  System.remove_peer sys "bob";
  (* The world keeps moving while bob is down. *)
  ok'
    (Peer.insert (System.peer sys "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 4; Value.String "alice_4.jpg" ]));
  for _ = 1 to 6 do
    ignore (System.round sys)
  done;

  (* Restart: journal replay restores pre-crash base state offline. *)
  let replayed = ref 0 in
  let bob =
    ok'
      (Persist.recover
         ~on_replay:(fun _ -> incr replayed)
         ~dir ~fallback_name:"bob" ())
  in
  check_bool "journal replayed entries" (!replayed > 0);
  check_int "journaled inbox survived the crash" inbox_before
    (List.length (Peer.query bob "inbox"));
  Simnet.restart net "bob";
  System.adopt_peer sys bob;
  (match System.run ~max_rounds:5000 sys with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check Alcotest.string "reconverged to the no-fault state" expected
    (dump sys)

(* {1 Differential churn property}

   A randomized crash/restart schedule with the full lifecycle wired in
   (reliable layer purged on removal, dead letters, adopt-time
   reconciliation) must reach exactly the state of a fault-free Inmem
   run given the same inserts: the victim, the crash moment, the outage
   length and the loss rate are all generated. *)

let churn_insert sys name id =
  ok'
    (Peer.insert (System.peer sys name)
       (Fact.make ~rel:"pictures" ~peer:name
          [ Value.Int id; Value.String (Printf.sprintf "%s_%d.jpg" name id) ]))

let churn_expected ~victim ~other () =
  let sys = System.create () in
  load_album sys attendees;
  ignore (ok' (System.run sys));
  churn_insert sys other 9;
  churn_insert sys victim 10;
  ignore (ok' (System.run sys));
  dump sys

let churn_run ~seed ~loss ~victim ~down_rounds =
  let dir = temp_dir () in
  let other = List.find (fun a -> a <> victim) attendees in
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed ~loss
      ~duplicate:0.05 ()
  in
  let transport, rctl = Reliable.wrap ~seed:(seed + 1) inner in
  let sys = System.create ~transport ~drop_unknown:false () in
  System.wire_reliable sys rctl;
  load_album sys attendees;
  (match System.run ~max_rounds:5000 sys with
  | Ok _ -> ()
  | Error e -> failwith e);
  Persist.attach (System.peer sys victim) ~dir;
  Persist.checkpoint (System.peer sys victim) ~dir;
  Simnet.crash net victim;
  System.remove_peer sys victim;
  (* The world keeps moving while the victim is down. *)
  churn_insert sys other 9;
  for _ = 1 to down_rounds do
    ignore (System.round sys)
  done;
  match Persist.recover ~dir ~fallback_name:victim () with
  | Error e -> Error ("recovery: " ^ e)
  | Ok p -> (
    Simnet.restart net victim;
    System.adopt_peer sys p;
    churn_insert sys victim 10;
    match System.run ~max_rounds:5000 sys with
    | Error e -> Error e
    | Ok _ -> Ok (dump sys))

let churn_prop =
  QCheck.Test.make ~count:8
    ~name:"random crash/restart schedules match the fault-free oracle"
    QCheck.(
      make
        Gen.(
          let* seed = int_range 1 10_000 in
          let* loss = float_range 0.0 0.3 in
          let* victim = oneofl attendees in
          let* down_rounds = int_range 1 25 in
          return (seed, loss, victim, down_rounds)))
    (fun (seed, loss, victim, down_rounds) ->
      let other = List.find (fun a -> a <> victim) attendees in
      let expected = churn_expected ~victim ~other () in
      match churn_run ~seed ~loss ~victim ~down_rounds with
      | Error e -> QCheck.Test.fail_reportf "did not converge: %s" e
      | Ok got ->
        if got <> expected then
          QCheck.Test.fail_reportf "diverged after churn:@.%s@.vs@.%s" got
            expected
        else true)

let suite =
  unit_tests
  @ [ acceptance; QCheck_alcotest.to_alcotest convergence_prop;
      tc "crash, journal recovery, reconvergence" crash_test;
      QCheck_alcotest.to_alcotest churn_prop ]
