open Wdl_syntax
open Wdl_store

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let t ints = Tuple.of_list (List.map (fun n -> Value.Int n) ints)

let collect_lookup rel bound =
  let acc = ref [] in
  Relation.lookup rel bound (fun tu -> acc := tu :: !acc);
  List.sort Tuple.compare !acc

let suite =
  [
    tc "tuple: equal/compare/hash" (fun () ->
        check_bool "equal" (Tuple.equal (t [ 1; 2 ]) (t [ 1; 2 ]));
        check_bool "diff" (not (Tuple.equal (t [ 1; 2 ]) (t [ 1; 3 ])));
        check_bool "arity order" (Tuple.compare (t [ 1 ]) (t [ 1; 1 ]) < 0);
        check_int "hash" (Tuple.hash (t [ 5; 6 ])) (Tuple.hash (t [ 5; 6 ])));
    tc "relation: insert is set semantics" (fun () ->
        let r = Relation.create ~arity:2 () in
        check_bool "new" (Relation.insert r (t [ 1; 2 ]));
        check_bool "dup" (not (Relation.insert r (t [ 1; 2 ])));
        check_int "card" 1 (Relation.cardinal r));
    tc "relation: arity mismatch raises" (fun () ->
        let r = Relation.create ~arity:2 () in
        check_bool "raises"
          (try ignore (Relation.insert r (t [ 1 ])); false
           with Invalid_argument _ -> true));
    tc "relation: delete" (fun () ->
        let r = Relation.create ~arity:1 () in
        ignore (Relation.insert r (t [ 1 ]));
        check_bool "removed" (Relation.delete r (t [ 1 ]));
        check_bool "absent" (not (Relation.delete r (t [ 1 ])));
        check_int "card" 0 (Relation.cardinal r));
    tc "lookup: constrained scan on small relation" (fun () ->
        let r = Relation.create ~arity:2 () in
        List.iter (fun x -> ignore (Relation.insert r (t [ x; x * x ]))) [ 1; 2; 3 ];
        check_int "hits" 1 (List.length (collect_lookup r [ (0, Value.Int 2) ]));
        check_int "none" 0 (List.length (collect_lookup r [ (0, Value.Int 9) ]));
        check_int "no index yet" 0 (Relation.index_count r));
    tc "lookup: index built beyond threshold and stays correct" (fun () ->
        let r = Relation.create ~arity:2 () in
        for i = 0 to 99 do
          ignore (Relation.insert r (t [ i mod 10; i ]))
        done;
        let hits = collect_lookup r [ (0, Value.Int 3) ] in
        check_int "bucket" 10 (List.length hits);
        (* Ad-hoc probes build the index on the second use of a
           signature, not the first. *)
        check_int "no index on first probe" 0 (Relation.index_count r);
        check_int "bucket again" 10
          (List.length (collect_lookup r [ (0, Value.Int 3) ]));
        check_int "one index" 1 (Relation.index_count r);
        (* Index maintained across inserts and deletes. *)
        ignore (Relation.insert r (t [ 3; 1000 ]));
        ignore (Relation.delete r (t [ 3; 3 ]));
        check_int "after updates" 10
          (List.length (collect_lookup r [ (0, Value.Int 3) ])));
    tc "lookup: indexing disabled never builds indexes" (fun () ->
        let r = Relation.create ~indexing:false ~arity:2 () in
        for i = 0 to 99 do
          ignore (Relation.insert r (t [ i mod 10; i ]))
        done;
        check_int "bucket" 10 (List.length (collect_lookup r [ (0, Value.Int 3) ]));
        check_int "no index" 0 (Relation.index_count r));
    tc "lookup: indexed and scan agree on multi-column patterns" (fun () ->
        let mk indexing =
          let r = Relation.create ~indexing ~arity:3 () in
          for i = 0 to 199 do
            ignore (Relation.insert r (t [ i mod 5; i mod 7; i ]))
          done;
          r
        in
        let a = mk true and b = mk false in
        let bound = [ (0, Value.Int 2); (1, Value.Int 3) ] in
        check_bool "same results"
          (List.equal Tuple.equal (collect_lookup a bound) (collect_lookup b bound)));
    tc "relation: copy is independent" (fun () ->
        let r = Relation.create ~arity:1 () in
        ignore (Relation.insert r (t [ 1 ]));
        let c = Relation.copy r in
        ignore (Relation.insert c (t [ 2 ]));
        check_int "orig" 1 (Relation.cardinal r);
        check_int "copy" 2 (Relation.cardinal c));
    tc "relation: to_sorted_list deterministic" (fun () ->
        let r = Relation.create ~arity:1 () in
        List.iter (fun x -> ignore (Relation.insert r (t [ x ]))) [ 3; 1; 2 ];
        check_bool "sorted"
          (List.equal Tuple.equal
             [ t [ 1 ]; t [ 2 ]; t [ 3 ] ]
             (Relation.to_sorted_list r)));
    tc "database: declare, redeclare, mismatches" (fun () ->
        let db = Database.create () in
        let d = Decl.make ~kind:Decl.Extensional ~rel:"m" ~peer:"p" [ "a"; "b" ] in
        check_bool "ok" (Result.is_ok (Database.declare db d));
        check_bool "idempotent" (Result.is_ok (Database.declare db d));
        check_bool "kind clash"
          (Result.is_error
             (Database.declare db
                (Decl.make ~kind:Decl.Intensional ~rel:"m" ~peer:"p" [ "a"; "b" ])));
        check_bool "arity clash"
          (Result.is_error
             (Database.declare db
                (Decl.make ~kind:Decl.Extensional ~rel:"m" ~peer:"p" [ "a" ]))));
    tc "database: ensure auto-creates extensional" (fun () ->
        let db = Database.create () in
        (match Database.ensure db ~rel:"fresh" ~arity:3 with
        | Ok info ->
          check_bool "kind" (info.Database.kind = Decl.Extensional);
          check_int "arity" 3 info.Database.arity
        | Error _ -> Alcotest.fail "ensure failed");
        check_bool "arity conflict"
          (Result.is_error (Database.ensure db ~rel:"fresh" ~arity:2)));
    tc "database: insert/delete/mem" (fun () ->
        let db = Database.create () in
        check_bool "ins" (Database.insert db ~rel:"m" (t [ 1 ]) = Ok true);
        check_bool "dup" (Database.insert db ~rel:"m" (t [ 1 ]) = Ok false);
        check_bool "mem" (Database.mem db ~rel:"m" (t [ 1 ]));
        check_bool "del" (Database.delete db ~rel:"m" (t [ 1 ]) = Ok true);
        check_bool "gone" (not (Database.mem db ~rel:"m" (t [ 1 ]))));
    tc "database: clear_intensional leaves extensional data" (fun () ->
        let db = Database.create () in
        ignore
          (Database.declare db
             (Decl.make ~kind:Decl.Intensional ~rel:"v" ~peer:"p" [ "a" ]));
        ignore (Database.insert db ~rel:"v" (t [ 1 ]));
        ignore (Database.insert db ~rel:"e" (t [ 2 ]));
        Database.clear_intensional db;
        check_bool "view empty" (not (Database.mem db ~rel:"v" (t [ 1 ])));
        check_bool "ext kept" (Database.mem db ~rel:"e" (t [ 2 ])));
    tc "database: relations sorted by name" (fun () ->
        let db = Database.create () in
        ignore (Database.insert db ~rel:"zzz" (t [ 1 ]));
        ignore (Database.insert db ~rel:"aaa" (t [ 1 ]));
        check_bool "sorted"
          (List.map (fun (i : Database.info) -> i.Database.name) (Database.relations db)
          = [ "aaa"; "zzz" ]));
  ]
