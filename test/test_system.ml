open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let setup_jules_emilien () =
  let sys = System.create () in
  let jules = System.add_peer sys "Jules" in
  let emilien = System.add_peer sys "Emilien" in
  ok
    (Peer.load_string jules
       {|
       ext selectedAttendee@Jules(attendee);
       int attendeePictures@Jules(id, name, owner, data);
       selectedAttendee@Jules("Emilien");
       attendeePictures@Jules($id, $n, $o, $d) :-
         selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d);
       |});
  ok
    (Peer.load_string emilien
       {|
       ext pictures@Emilien(id, name, owner, data);
       pictures@Emilien(32, "sea.jpg", "Emilien", "b0");
       pictures@Emilien(33, "talk.jpg", "Emilien", "b1");
       |});
  (sys, jules, emilien)

let suite =
  [
    tc "the paper's delegation example end to end" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        check_int "view" 2 (List.length (Peer.query jules "attendeePictures"));
        (match Peer.delegated_rules emilien with
        | [ (src, rule) ] ->
          Alcotest.check Alcotest.string "origin" "Jules" src;
          check_bool "residual"
            (Rule.equal rule
               (Parser.parse_rule
                  {|attendeePictures@Jules($id, $n, $o, $d) :-
                      pictures@Emilien($id, $n, $o, $d)|}))
        | l -> Alcotest.fail (Printf.sprintf "expected 1 delegation, got %d" (List.length l))));
    tc "incremental: new remote facts reach the view" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        ok
          (Peer.insert emilien
             (Fact.make ~rel:"pictures" ~peer:"Emilien"
                [ Value.Int 34; Value.String "x.jpg"; Value.String "Emilien";
                  Value.String "b2" ]));
        ignore (ok (System.run sys));
        check_int "view grows" 3 (List.length (Peer.query jules "attendeePictures")));
    tc "retraction: deselecting empties the view and uninstalls" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        ok
          (Peer.delete jules
             (Fact.make ~rel:"selectedAttendee" ~peer:"Jules"
                [ Value.String "Emilien" ]));
        ignore (ok (System.run sys));
        check_int "view empty" 0 (List.length (Peer.query jules "attendeePictures"));
        check_int "uninstalled" 0 (List.length (Peer.delegated_rules emilien)));
    tc "remote deletion shrinks the view (one-stage semantics)" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        ok
          (Peer.delete emilien
             (Fact.make ~rel:"pictures" ~peer:"Emilien"
                [ Value.Int 32; Value.String "sea.jpg"; Value.String "Emilien";
                  Value.String "b0" ]));
        ignore (ok (System.run sys));
        check_int "view shrinks" 1 (List.length (Peer.query jules "attendeePictures")));
    tc "remote facts into extensional relations persist" (fun () ->
        let sys = System.create () in
        let src = System.add_peer sys "src" in
        let dst = System.add_peer sys "dst" in
        ok (Peer.load_string src "a@src(1); stored@dst($x) :- a@src($x);");
        ignore (ok (System.run sys));
        check_int "arrived" 1 (List.length (Peer.query dst "stored"));
        (* Deleting the support does NOT remove the update. *)
        ok (Peer.delete src (Fact.make ~rel:"a" ~peer:"src" [ Value.Int 1 ]));
        ignore (ok (System.run sys));
        check_int "persists" 1 (List.length (Peer.query dst "stored")));
    tc "chained delegation across three peers" (fun () ->
        let sys = System.create () in
        let a = System.add_peer sys "a" in
        let b = System.add_peer sys "b" in
        let c = System.add_peer sys "c" in
        ok
          (Peer.load_string a
             {|
             ext who@a(peer);
             int got@a(x);
             who@a("b");
             got@a($x) :- who@a($p), hop@$p($q), data@$q($x);
             |});
        ok (Peer.load_string b {| ext hop@b(q); hop@b("c"); |});
        ok (Peer.load_string c "ext data@c(x); data@c(7);");
        ignore (ok (System.run sys));
        check_int "result" 1 (List.length (Peer.query a "got"));
        check_bool "b holds a delegation" (Peer.delegated_rules b <> []);
        check_bool "c holds a delegation from b" (Peer.delegated_rules c <> []);
        (* Retract upstream: the whole chain unwinds. *)
        ok (Peer.delete a (Fact.make ~rel:"who" ~peer:"a" [ Value.String "b" ]));
        ignore (ok (System.run sys));
        check_int "view empty" 0 (List.length (Peer.query a "got"));
        check_int "b clean" 0 (List.length (Peer.delegated_rules b));
        check_int "c clean" 0 (List.length (Peer.delegated_rules c)));
    tc "distributed transitive closure over a chain of peers" (fun () ->
        let sys = System.create () in
        let n = 5 in
        let peer_name i = Printf.sprintf "n%d" i in
        for i = 0 to n - 1 do
          let p = System.add_peer sys (peer_name i) in
          ok
            (Peer.load_string p
               (Printf.sprintf "ext next@%s(peer);" (peer_name i)));
          if i < n - 1 then
            ok
              (Peer.load_string p
                 (Printf.sprintf {|next@%s("%s");|} (peer_name i) (peer_name (i + 1))))
        done;
        (* reach@n0 collects every peer reachable by following next
           pointers: the rule re-delegates itself down the chain. *)
        let p0 = System.peer sys (peer_name 0) in
        ok
          (Peer.load_string p0
             {|
             int reach@n0(peer);
             reach@n0($q) :- next@n0($q);
             reach@n0($r) :- reach@n0($q), next@$q($r);
             |});
        ignore (ok (System.run sys));
        check_int "reaches all" (n - 1) (List.length (Peer.query p0 "reach")));
    tc "mutual recursion across two peers stabilises" (fun () ->
        let sys = System.create () in
        let p = System.add_peer sys "p" in
        let q = System.add_peer sys "q" in
        ok (Peer.load_string p "ext a@p(x); a@p(1); b@q($x) :- a@p($x);");
        ok (Peer.load_string q "ext b@q(x); a@p($x) :- b@q($x);");
        (match System.run sys with
        | Ok _ ->
          check_int "p has a(1)" 1 (List.length (Peer.query p "a"));
          check_int "q has b(1)" 1 (List.length (Peer.query q "b"))
        | Error e -> Alcotest.fail e));
    tc "messages to unknown peers are dropped, system still quiesces" (fun () ->
        let sys = System.create () in
        let p = System.add_peer sys "p" in
        ok (Peer.load_string p "a@p(1); out@ghost($x) :- a@p($x);");
        ignore (ok (System.run sys));
        check_bool "dropped" (System.messages_dropped sys > 0));
    tc "same results over the simulated (reordering) network" (fun () ->
        let mk transport =
          let sys = System.create ?transport () in
          let jules = System.add_peer sys "Jules" in
          let emilien = System.add_peer sys "Emilien" in
          ok
            (Peer.load_string jules
               {|ext selectedAttendee@Jules(a); int attendeePictures@Jules(i, n, o, d);
                 selectedAttendee@Jules("Emilien");
                 attendeePictures@Jules($i,$n,$o,$d) :-
                   selectedAttendee@Jules($a), pictures@$a($i,$n,$o,$d);|});
          ok
            (Peer.load_string emilien
               {|ext pictures@Emilien(i, n, o, d);
                 pictures@Emilien(1, "a", "Emilien", "x");
                 pictures@Emilien(2, "b", "Emilien", "y");|});
          ignore (ok (System.run sys));
          List.map (Format.asprintf "%a" Fact.pp) (Peer.query jules "attendeePictures")
        in
        let base = mk None in
        let sim =
          mk (Some (Wdl_net.Simnet.create ~seed:5 ~base_latency:2.5 ~jitter:1.0 ()))
        in
        check_bool "identical state" (base = sim));
    tc "duplicated deliveries are absorbed (at-least-once tolerance)" (fun () ->
        (* Facts batches replace caches and installs deduplicate, so a
           duplicating network must yield the same final state. *)
        let transport =
          Wdl_net.Simnet.create ~seed:11 ~base_latency:1.0 ~jitter:0.5
            ~duplicate:0.5 ()
        in
        let sys = System.create ~transport ~drop_unknown:true () in
        let jules = System.add_peer sys "Jules" in
        let emilien = System.add_peer sys "Emilien" in
        ok
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok
          (Peer.load_string emilien
             "ext pics@Emilien(i); pics@Emilien(1); pics@Emilien(2);");
        ignore (ok (System.run sys));
        check_int "view exact" 2 (List.length (Peer.query jules "view"));
        check_int "one delegation" 1 (List.length (Peer.delegated_rules emilien));
        (* Retraction also survives duplication. *)
        ok
          (Peer.delete jules
             (Fact.make ~rel:"sel" ~peer:"Jules" [ Value.String "Emilien" ]));
        ignore (ok (System.run sys));
        check_int "clean retract" 0 (List.length (Peer.delegated_rules emilien)));
    tc "partition holds traffic; healing converges (laptops lose wifi)"
      (fun () ->
        let transport, net =
          Wdl_net.Simnet.create_with_control ~seed:4 ~jitter:0. ~base_latency:1.0 ()
        in
        let sys = System.create ~transport () in
        let jules = System.add_peer sys "Jules" in
        let emilien = System.add_peer sys "Emilien" in
        ok
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok (Peer.load_string emilien "ext pics@Emilien(i); pics@Emilien(1);");
        Wdl_net.Simnet.partition net ~between:"Jules" ~and_:"Emilien";
        check_bool "down" (Wdl_net.Simnet.partitioned net ~between:"Emilien" ~and_:"Jules");
        for _ = 1 to 10 do
          ignore (System.round sys)
        done;
        check_int "nothing crossed" 0 (List.length (Peer.query jules "view"));
        check_int "no delegation" 0 (List.length (Peer.delegated_rules emilien));
        (* Local progress continues during the outage. *)
        ok (Peer.insert emilien (Fact.make ~rel:"pics" ~peer:"Emilien" [ Value.Int 2 ]));
        for _ = 1 to 3 do
          ignore (System.round sys)
        done;
        Wdl_net.Simnet.heal net ~between:"Jules" ~and_:"Emilien";
        ignore (ok (System.run sys));
        check_int "converged" 2 (List.length (Peer.query jules "view"));
        check_int "delegation installed" 1
          (List.length (Peer.delegated_rules emilien)));
    tc "run is idempotent once quiescent" (fun () ->
        let sys, _, _ = setup_jules_emilien () in
        ignore (ok (System.run sys));
        check_int "no more rounds" 0 (ok (System.run sys));
        check_bool "quiescent" (System.quiescent sys));
    tc "pending delegation blocks evaluation until accepted" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys ~policy:Acl.Closed "Jules" in
        let julia = System.add_peer sys "Julia" in
        ok (Peer.load_string jules {|ext pictures@Jules(i); pictures@Jules(7);|});
        ok
          (Peer.load_string julia
             {|int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);|});
        ignore (ok (System.run sys));
        check_int "blocked" 0 (List.length (Peer.query julia "mine"));
        check_int "pending" 1 (List.length (Peer.pending_delegations jules));
        let src, rule = List.hd (Peer.pending_delegations jules) in
        check_bool "accepted" (Peer.accept_delegation jules ~src rule);
        ignore (ok (System.run sys));
        check_int "flows" 1 (List.length (Peer.query julia "mine")));
    tc "rejected delegation never installs" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys ~policy:Acl.Closed "Jules" in
        let julia = System.add_peer sys "Julia" in
        ok (Peer.load_string jules {|ext pictures@Jules(i); pictures@Jules(7);|});
        ok
          (Peer.load_string julia
             {|int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);|});
        ignore (ok (System.run sys));
        let src, rule = List.hd (Peer.pending_delegations jules) in
        check_bool "rejected" (Peer.reject_delegation jules ~src rule);
        ignore (ok (System.run sys));
        check_int "still blocked" 0 (List.length (Peer.query julia "mine"));
        check_int "no delegations" 0 (List.length (Peer.delegated_rules jules)));
    tc "ring topology: facts travel all the way around" (fun () ->
        let sys = System.create () in
        let n = 4 in
        let name i = Printf.sprintf "r%d" i in
        for i = 0 to n - 1 do
          let p = System.add_peer sys (name i) in
          ok
            (Peer.load_string p
               (Printf.sprintf "token@%s($x) :- token@%s($x);"
                  (name ((i + 1) mod n))
                  (name i)))
        done;
        ok
          (Peer.insert
             (System.peer sys (name 0))
             (Fact.make ~rel:"token" ~peer:(name 0) [ Value.Int 42 ]));
        ignore (ok (System.run sys));
        for i = 0 to n - 1 do
          check_int
            (Printf.sprintf "token reached %s" (name i))
            1
            (List.length (Peer.query (System.peer sys (name i)) "token"))
        done);
    tc "removing the origin rule retracts its delegations" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        check_int "installed" 1 (List.length (Peer.delegated_rules emilien));
        let rule = List.hd (Peer.rules jules) in
        check_bool "removed" (Peer.remove_rule jules rule);
        ignore (ok (System.run sys));
        check_int "retracted" 0 (List.length (Peer.delegated_rules emilien));
        check_int "view empty" 0 (List.length (Peer.query jules "attendeePictures")));
    tc "peers with different strategies interoperate" (fun () ->
        let sys = System.create () in
        let jules =
          System.add_peer sys ~strategy:Wdl_eval.Fixpoint.Naive "Jules"
        in
        let emilien = System.add_peer sys "Emilien" in
        ok
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok
          (Peer.load_string emilien
             "ext pics@Emilien(i); pics@Emilien(1); pics@Emilien(2);");
        ignore (ok (System.run sys));
        check_int "view" 2 (List.length (Peer.query jules "view")));
    tc "a delegation chain that returns to its origin stabilises" (fun () ->
        let sys = System.create () in
        let a = System.add_peer sys "a" in
        let b = System.add_peer sys "b" in
        (* a's rule hops to b, whose data sends it hopping back to a. *)
        ok
          (Peer.load_string a
             {|ext here@a(x); int got@a(x); here@a(7);
               got@a($x) :- hop@b($q), here@$q($x);|});
        ok (Peer.load_string b {|ext hop@b(q); hop@b("a");|});
        ignore (ok (System.run sys));
        check_int "round trip result" 1 (List.length (Peer.query a "got"));
        check_bool "b holds a's rule" (Peer.delegated_rules b <> []);
        check_bool "a holds b's residual" (Peer.delegated_rules a <> []));
    tc "trace records message flow on both ends" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        let sent_by p =
          List.length
            (List.filter
               (function Trace.Message_sent _ -> true | _ -> false)
               (Trace.events (Peer.trace p)))
        in
        let received_by p =
          List.length
            (List.filter
               (function Trace.Message_received _ -> true | _ -> false)
               (Trace.events (Peer.trace p)))
        in
        check_bool "jules sent" (sent_by jules > 0);
        check_bool "emilien received" (received_by emilien > 0);
        check_int "conservation"
          (sent_by jules + sent_by emilien)
          (received_by jules + received_by emilien));
    tc "failure detector: silence demotes, dead letters, revival flushes"
      (fun () ->
        (* Tight thresholds so the detector acts within a few rounds;
           "watcher" materialises the view into sys_peers. *)
        let sys =
          System.create
            ~transport:(Wdl_net.Inmem.create ~sizer:Message.size ())
            ~drop_unknown:false
            ~membership:
              { Membership.suspect_after = 2; dead_after = 4; probe_every = 0 }
            ()
        in
        let p = System.add_peer sys "p" in
        let watcher = System.add_peer sys "watcher" in
        ok (Peer.load_string watcher "ext sys_peers@watcher(name, status);");
        ok (Peer.load_string p "ext a@p(x); a@p(1); out@ghost($x) :- a@p($x);");
        (* Round 1 stages the message to ghost, tracking the name. *)
        ignore (System.round sys);
        check_bool "ghost tracked alive"
          (System.membership_status sys "ghost" = Some Membership.Alive);
        for _ = 1 to 5 do
          ignore (System.round sys)
        done;
        check_bool "silence killed ghost"
          (System.membership_status sys "ghost" = Some Membership.Dead);
        check_bool "registered peers never demoted by silence"
          (System.membership_status sys "p" = Some Membership.Alive);
        check_bool "transition traced"
          (List.exists
             (function
               | Trace.Peer_status { peer = "ghost"; status = "dead" } -> true
               | _ -> false)
             (Trace.events (System.trace sys)));
        check_bool "view queryable through sys_peers"
          (List.exists
             (fun f ->
               Format.asprintf "%a" Fact.pp f
               = {|sys_peers@watcher("ghost", "dead")|})
             (Peer.query watcher "sys_peers"));
        (* New traffic to a dead name parks instead of hitting the wire.
           (Manual rounds: the round-1 message to ghost sits undrained in
           the transport until ghost exists, so [run] cannot quiesce.) *)
        ok (Peer.insert p (Fact.make ~rel:"a" ~peer:"p" [ Value.Int 2 ]));
        for _ = 1 to 4 do
          ignore (System.round sys)
        done;
        check_bool "dead-lettered" (System.dead_lettered sys > 0);
        check_bool "parked" (System.dead_letters sys > 0);
        (* The name joins for real: parked letters flush and deliver. *)
        let ghost = System.add_peer sys "ghost" in
        check_bool "revived"
          (System.membership_status sys "ghost" = Some Membership.Alive);
        ignore (ok (System.run sys));
        check_int "nothing parked" 0 (System.dead_letters sys);
        check_int "flushed letters and re-announce both arrived" 2
          (List.length (Peer.query ghost "out")));
    tc "eviction retracts the dead peer's delegations everywhere" (fun () ->
        let sys, _, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        check_int "installed" 1 (List.length (Peer.delegated_rules emilien));
        System.evict_peer sys "Jules";
        check_int "eviction applied" 1 (System.evictions sys);
        check_bool "marked dead"
          (System.membership_status sys "Jules" = Some Membership.Dead);
        check_int "delegation retracted" 0
          (List.length (Peer.delegated_rules emilien));
        ignore (ok (System.run sys));
        check_bool "survivors still quiesce" (System.quiescent sys));
    tc "rejoin after eviction reconverges (delegations reinstall)" (fun () ->
        let sys, jules, emilien = setup_jules_emilien () in
        ignore (ok (System.run sys));
        let snapshot = Peer.snapshot jules in
        System.evict_peer sys "Jules";
        ignore (ok (System.run sys));
        check_int "retracted while dead" 0
          (List.length (Peer.delegated_rules emilien));
        let jules' = ok (Peer.restore snapshot) in
        System.adopt_peer sys jules';
        ignore (ok (System.run sys));
        check_int "delegation reinstalled" 1
          (List.length (Peer.delegated_rules emilien));
        check_int "view rebuilt" 2
          (List.length (Peer.query jules' "attendeePictures")));
    tc "remove_peer leaves nothing behind: the name is reusable" (fun () ->
        let transport, rctl =
          Wdl_net.Reliable.wrap
            (Wdl_net.Inmem.create
               ~sizer:(fun e ->
                 match e.Wdl_net.Reliable.env_payload with
                 | Some m -> Message.size m
                 | None -> 8)
               ())
        in
        let sys = System.create ~transport ~drop_unknown:false () in
        System.wire_reliable sys rctl;
        let src = System.add_peer sys "src" in
        ignore (System.add_peer sys "sink");
        ok (Peer.load_string src "a@src(1); stored@sink($x) :- a@src($x);");
        ignore (ok (System.run sys));
        System.remove_peer sys "sink";
        (* A second incarnation under the same name: the purged session
           state must let its fresh sequence numbers through, and src's
           forgotten diff state must re-announce the batch. *)
        let sink' = System.add_peer sys "sink" in
        ok (Peer.insert src (Fact.make ~rel:"a" ~peer:"src" [ Value.Int 2 ]));
        ignore (ok (System.run sys));
        check_int "new incarnation caught up" 2
          (List.length (Peer.query sink' "stored")));
    tc "bounded inbox sheds by policy; depth never exceeds capacity"
      (fun () ->
        let apply shed =
          let p = Peer.create ~inbox_capacity:1 ~shed "q" in
          ok (Peer.load_string p "ext r@q(x);");
          List.iter
            (fun i ->
              Peer.receive p
                (Message.make ~src:(Printf.sprintf "s%d" i) ~dst:"q" ~stage:1
                   ~facts:
                     (Some [ Fact.make ~rel:"r" ~peer:"q" [ Value.Int i ] ])
                   ()))
            [ 1; 2 ];
          check_int "depth bounded" 1 (Peer.inbox_length p);
          check_int "one shed" 1 (Peer.sheds p);
          ignore (Peer.stage p);
          List.map
            (fun f -> Format.asprintf "%a" Fact.pp f)
            (Peer.query p "r")
        in
        Alcotest.check (Alcotest.list Alcotest.string) "drop_newest keeps 1"
          [ "r@q(1)" ] (apply Peer.Drop_newest);
        Alcotest.check (Alcotest.list Alcotest.string) "drop_oldest keeps 2"
          [ "r@q(2)" ] (apply Peer.Drop_oldest));
    tc "accept_all installs every pending delegation" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys ~policy:Acl.Closed "Jules" in
        let a = System.add_peer sys "a" in
        let b = System.add_peer sys "b" in
        ok (Peer.load_string jules "ext pictures@Jules(i); pictures@Jules(1);");
        ok (Peer.load_string a "int v@a(i); v@a($i) :- pictures@Jules($i);");
        ok (Peer.load_string b "int v@b(i); v@b($i) :- pictures@Jules($i);");
        ignore (ok (System.run sys));
        check_int "two pending" 2 (List.length (Peer.pending_delegations jules));
        check_int "two installed" 2 (Peer.accept_all_delegations jules);
        ignore (ok (System.run sys));
        check_int "a sees" 1 (List.length (Peer.query a "v"));
        check_int "b sees" 1 (List.length (Peer.query b "v")));
  ]
