open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let fact = Fact.make ~rel:"m" ~peer:"p" [ Value.Int 1 ]
let ev i = Trace.Fact_inserted { peer = "p"; fact = Fact.make ~rel:"m" ~peer:"p" [ Value.Int i ] }

let suite =
  [
    tc "events come back oldest first" (fun () ->
        let t = Trace.create () in
        Trace.record t (ev 1);
        Trace.record t (ev 2);
        match Trace.events t with
        | [ Trace.Fact_inserted { fact = f1; _ }; Trace.Fact_inserted { fact = f2; _ } ] ->
          check_bool "order" (Fact.compare f1 f2 < 0)
        | _ -> Alcotest.fail "unexpected events");
    tc "capacity bounds storage but not the counter" (fun () ->
        let t = Trace.create ~capacity:3 () in
        for i = 1 to 10 do
          Trace.record t (ev i)
        done;
        check_int "stored" 3 (List.length (Trace.events t));
        check_int "total" 10 (Trace.count t));
    tc "capacity zero stores nothing, counts everything" (fun () ->
        let t = Trace.create ~capacity:0 () in
        for i = 1 to 5 do
          Trace.record t (ev i)
        done;
        check_int "stored" 0 (List.length (Trace.events t));
        check_int "total" 5 (Trace.count t));
    tc "the survivors under capacity are the oldest events" (fun () ->
        let t = Trace.create ~capacity:2 () in
        for i = 1 to 5 do
          Trace.record t (ev i)
        done;
        match Trace.events t with
        | [ Trace.Fact_inserted { fact = f1; _ };
            Trace.Fact_inserted { fact = f2; _ } ] ->
          check_bool "first two kept"
            (Fact.equal f1 (Fact.make ~rel:"m" ~peer:"p" [ Value.Int 1 ])
            && Fact.equal f2 (Fact.make ~rel:"m" ~peer:"p" [ Value.Int 2 ]))
        | _ -> Alcotest.fail "unexpected events");
    tc "timed_events carries monotone timestamps" (fun () ->
        let t = Trace.create () in
        for i = 1 to 4 do
          Trace.record t (ev i)
        done;
        let times = List.map fst (Trace.timed_events t) in
        check_int "all stamped" 4 (List.length times);
        check_bool "nondecreasing oldest-first"
          (List.for_all2 (fun a b -> a <= b)
             (List.filteri (fun i _ -> i < 3) times)
             (List.tl times));
        check_bool "same events"
          (List.map snd (Trace.timed_events t) = Trace.events t));
    tc "to_chrome pairs stage B/E and tags instants" (fun () ->
        let t = Trace.create () in
        Trace.record t (Trace.Stage_start { peer = "p"; stage = 1 });
        Trace.record t (ev 1);
        Trace.record t
          (Trace.Stage_end { peer = "p"; stage = 1; derivations = 1; iterations = 1 });
        (match Trace.to_chrome ~tid:3 t with
        | [ b; i; e ] ->
          check_bool "begin" (b.Wdl_obs.Chrome_trace.ph = "B" && b.name = "stage");
          check_bool "instant"
            (i.Wdl_obs.Chrome_trace.ph = "i" && i.name = "fact_inserted");
          check_bool "end" (e.Wdl_obs.Chrome_trace.ph = "E");
          check_bool "lane" (b.Wdl_obs.Chrome_trace.tid = 3);
          check_bool "ordered timestamps"
            (b.Wdl_obs.Chrome_trace.ts <= e.Wdl_obs.Chrome_trace.ts)
        | _ -> Alcotest.fail "expected three events"));
    tc "clear resets everything" (fun () ->
        let t = Trace.create () in
        Trace.record t (ev 1);
        Trace.clear t;
        check_int "events" 0 (List.length (Trace.events t));
        check_int "count" 0 (Trace.count t));
    tc "find locates the first match" (fun () ->
        let t = Trace.create () in
        Trace.record t (Trace.Stage_start { peer = "p"; stage = 1 });
        Trace.record t (ev 1);
        check_bool "found"
          (Trace.find t (function Trace.Fact_inserted _ -> true | _ -> false)
          <> None);
        check_bool "absent"
          (Trace.find t (function Trace.Message_sent _ -> true | _ -> false)
          = None));
    tc "every event variant prints" (fun () ->
        let rule = Parser.parse_rule "a@p($x) :- b@p($x)" in
        let msg = Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ rule ] () in
        let events =
          [ Trace.Stage_start { peer = "p"; stage = 1 };
            Trace.Stage_end { peer = "p"; stage = 1; derivations = 2; iterations = 3 };
            Trace.Fact_inserted { peer = "p"; fact };
            Trace.Fact_deleted { peer = "p"; fact };
            Trace.Message_sent { msg };
            Trace.Message_received { msg };
            Trace.Delegation_installed { peer = "p"; src = "q"; rule };
            Trace.Delegation_pending { peer = "p"; src = "q"; rule };
            Trace.Delegation_retracted { peer = "p"; src = "q"; rule };
            Trace.Delegation_rejected { peer = "p"; src = "q"; rule; reason = "r" };
            Trace.Rule_added { peer = "p"; rule };
            Trace.Rule_removed { peer = "p"; rule };
            Trace.Runtime_errors
              { peer = "p";
                errors = [ Wdl_eval.Runtime_error.Store_error { rel = "m"; message = "x" } ] } ]
        in
        List.iter
          (fun e ->
            check_bool "nonempty"
              (String.length (Format.asprintf "%a" Trace.pp_event e) > 0))
          events);
  ]
