(* The Web interface: HTTP substrate + Wepic-style UI handler. *)
open Webdamlog
module Httpd = Wdl_web.Httpd
module Ui = Wdl_web.Ui

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

(* A blocking one-shot HTTP client over a raw socket. The server's poll
   runs in this same process, so: connect+send, poll, then read. *)
let http server ~meth ~path ?(body = "") () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close sock)
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Httpd.port server));
      let request =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Type: \
           application/x-www-form-urlencoded\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      ignore (Unix.write_substring sock request 0 (String.length request));
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      ignore (Httpd.poll server);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          read ()
        end
      in
      (try read () with Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
      Buffer.contents buf)

let status response =
  match String.split_on_char ' ' response with
  | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:(-1)
  | _ -> -1

let with_ui f =
  let sys = System.create () in
  let jules = System.add_peer sys "Jules" in
  ok'
    (Peer.load_string jules
       {|ext pictures@Jules(id, name); int v@Jules(id);
         pictures@Jules(1, "sea.jpg");
         v@Jules($i) :- pictures@Jules($i, $n);|});
  let settle () = ignore (System.run sys) in
  settle ();
  let server = Httpd.start (Ui.handler sys ~settle) in
  Fun.protect ~finally:(fun () -> Httpd.stop server) (fun () -> f sys jules server)

let suite =
  [
    tc "url_decode and html_escape" (fun () ->
        Alcotest.check Alcotest.string "decode" "a b&c=é"
          (Httpd.url_decode "a+b%26c%3D%C3%A9");
        Alcotest.check Alcotest.string "escape" "&lt;a&gt;&amp;&quot;"
          (Httpd.html_escape "<a>&\""));
    tc "form_values parses urlencoded bodies" (fun () ->
        check_bool "pairs"
          (Httpd.form_values "a=1&b=two+words&flag"
          = [ ("a", "1"); ("b", "two words"); ("flag", "") ]));
    tc "GET / lists peers" (fun () ->
        with_ui (fun _ _ server ->
            let resp = http server ~meth:"GET" ~path:"/" () in
            check_int "200" 200 (status resp);
            check_bool "lists Jules" (Str_helper.contains resp "Jules")));
    tc "GET /peer/NAME renders relations and program" (fun () ->
        with_ui (fun _ _ server ->
            let resp = http server ~meth:"GET" ~path:"/peer/Jules" () in
            check_int "200" 200 (status resp);
            check_bool "facts" (Str_helper.contains resp "sea.jpg");
            check_bool "view" (Str_helper.contains resp "v@Jules");
            check_bool "rule shown"
              (Str_helper.contains resp "pictures@Jules($i, $n)")));
    tc "unknown paths and peers give 404" (fun () ->
        with_ui (fun _ _ server ->
            check_int "path" 404 (status (http server ~meth:"GET" ~path:"/nope" ()));
            check_int "peer" 404
              (status (http server ~meth:"GET" ~path:"/peer/ghost" ()))));
    tc "POST statement inserts and redirects" (fun () ->
        with_ui (fun _ jules server ->
            let resp =
              http server ~meth:"POST" ~path:"/peer/Jules/statement"
                ~body:"stmt=pictures%40Jules(2%2C%20%22talk.jpg%22)%3B" ()
            in
            check_int "303" 303 (status resp);
            check_int "inserted" 2 (List.length (Peer.query jules "pictures"));
            check_int "view settled" 2 (List.length (Peer.query jules "v"))));
    tc "bad statements give 400" (fun () ->
        with_ui (fun _ _ server ->
            check_int "400" 400
              (status
                 (http server ~meth:"POST" ~path:"/peer/Jules/statement"
                    ~body:"stmt=%24broken" ()))));
    tc "GET query runs the Query tab" (fun () ->
        with_ui (fun _ _ server ->
            let resp =
              http server ~meth:"GET"
                ~path:"/peer/Jules/query?q=q%40Jules(%24n)%20%3A-%20pictures%40Jules(%24i%2C%20%24n)"
                ()
            in
            check_int "200" 200 (status resp);
            check_bool "row" (Str_helper.contains resp "sea.jpg")));
    tc "GET /metrics exposes Prometheus text with engine metrics" (fun () ->
        Wdl_obs.Obs.clear Wdl_obs.Obs.default;
        with_ui (fun _ _ server ->
            let resp = http server ~meth:"GET" ~path:"/metrics" () in
            check_int "200" 200 (status resp);
            check_bool "content type"
              (Str_helper.contains resp "text/plain; version=0.0.4");
            List.iter
              (fun needle ->
                check_bool needle (Str_helper.contains resp needle))
              [
                (* stage-duration histogram *)
                "# TYPE wdl_eval_stage_duration_microseconds histogram";
                "wdl_eval_stage_duration_microseconds_bucket{peer=\"Jules\",le=\"+Inf\"}";
                "wdl_eval_stage_duration_microseconds_count{peer=\"Jules\"}";
                (* per-peer derivation counter *)
                "wdl_peer_derivations_total{peer=\"Jules\"} 1";
                (* every Netstats field, re-exported *)
                "wdl_net_sent_total{transport=\"inmem\"}";
                "wdl_net_delivered_total{transport=\"inmem\"}";
                "wdl_net_bytes_total{transport=\"inmem\"}";
                "wdl_net_retransmits_total{transport=\"inmem\"}";
                "wdl_net_dup_dropped_total{transport=\"inmem\"}";
                "wdl_net_send_failures_total{transport=\"inmem\"}";
                "wdl_net_acked_total{transport=\"inmem\"}";
                "wdl_net_pending{transport=\"inmem\"}";
                (* system counters *)
                "# TYPE wdl_system_rounds_total counter";
              ]));
    tc "GET /trace.json returns chrome trace events" (fun () ->
        with_ui (fun _ _ server ->
            let resp = http server ~meth:"GET" ~path:"/trace.json" () in
            check_int "200" 200 (status resp);
            check_bool "content type"
              (Str_helper.contains resp "application/json");
            check_bool "envelope" (Str_helper.contains resp "\"traceEvents\":[");
            check_bool "stage pair" (Str_helper.contains resp "\"ph\":\"B\"");
            check_bool "fact instant"
              (Str_helper.contains resp "fact_inserted")));
    tc "pending delegations can be accepted through the UI" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys ~policy:Acl.Closed "Jules" in
        let julia = System.add_peer sys "Julia" in
        ok' (Peer.load_string jules "ext pictures@Jules(i); pictures@Jules(7);");
        ok'
          (Peer.load_string julia
             "int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);");
        let settle () = ignore (System.run sys) in
        settle ();
        let server = Httpd.start (Ui.handler sys ~settle) in
        Fun.protect
          ~finally:(fun () -> Httpd.stop server)
          (fun () ->
            let peer_page = http server ~meth:"GET" ~path:"/peer/Jules" () in
            check_bool "notification shown"
              (Str_helper.contains peer_page "asks to install");
            let src, rule = List.hd (Peer.pending_delegations jules) in
            let body =
              Printf.sprintf "src=%s&rule=%s" src
                (String.concat ""
                   (List.map
                      (fun c ->
                        Printf.sprintf "%%%02X" (Char.code c))
                      (List.init
                         (String.length (Format.asprintf "%a" Wdl_syntax.Rule.pp rule))
                         (String.get (Format.asprintf "%a" Wdl_syntax.Rule.pp rule)))))
            in
            let resp =
              http server ~meth:"POST" ~path:"/peer/Jules/accept" ~body ()
            in
            check_int "303" 303 (status resp);
            check_int "installed" 1 (List.length (Peer.delegated_rules jules));
            check_int "flows" 1 (List.length (Peer.query julia "mine"))));
  ]
