module Wepic = Wdl_wepic.Wepic
module Workload = Wdl_wepic.Workload
open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let two_attendees () =
  let env = Wepic.create () in
  ignore (Wepic.add_attendee env "Emilien");
  ignore (Wepic.add_attendee env "Jules");
  env

let suite =
  [
    tc "uploads propagate to the sigmod peer" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        ignore (ok (Wepic.run env));
        check_int "sigmod" 1 (List.length (Wepic.pictures_at_sigmod env)));
    tc "facebook publication is gated by authorization" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        ignore (ok (Wepic.run env));
        check_int "not yet" 0 (List.length (Wepic.pictures_on_facebook env));
        Wepic.authorize_facebook env ~attendee:"Emilien" ~id:1;
        ignore (ok (Wepic.run env));
        check_int "published" 1 (List.length (Wepic.pictures_on_facebook env)));
    tc "pictures posted on facebook flow back to sigmod" (fun () ->
        let env = two_attendees () in
        ignore
          (Wdl_wrappers.Facebook.post_group_picture (Wepic.facebook env)
             ~group:"sigmod2013"
             { Wdl_wrappers.Facebook.id = 99; name = "ext.jpg"; owner = "x"; data = "d" });
        ignore (ok (Wepic.run env));
        check_int "sigmod" 1 (List.length (Wepic.pictures_at_sigmod env)));
    tc "selection fills the attendeePictures frame" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.upload_picture env ~attendee:"Jules" ~id:2 ~name:"b.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        (match Wepic.attendee_pictures env ~viewer:"Jules" with
        | [ f ] -> check_bool "emilien's" (List.mem (Value.String "Emilien") f.Fact.args)
        | l -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length l)));
        (* Selecting oneself works without network (peer var = self). *)
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Jules";
        ignore (ok (Wepic.run env));
        check_int "both now" 2
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules")));
    tc "deselecting retracts" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        Wepic.deselect_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        check_int "empty" 0 (List.length (Wepic.attendee_pictures env ~viewer:"Jules")));
    tc "transfer respects the recipient's protocol: wepic" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Jules" ~id:2 ~name:"b.jpg" ~data:"d";
        Wepic.set_protocol env ~attendee:"Emilien" ~protocol:"wepic";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.select_picture env ~viewer:"Jules" ~name:"b.jpg" ~id:2 ~owner:"Jules";
        ignore (ok (Wepic.run env));
        check_int "delivered in wepic relation" 1
          (List.length (Webdamlog.Peer.query (Wepic.attendee env "Emilien") "wepic")));
    tc "transfer respects the recipient's protocol: email" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Jules" ~id:2 ~name:"b.jpg" ~data:"d";
        Wepic.set_protocol env ~attendee:"Emilien" ~protocol:"email";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.select_picture env ~viewer:"Jules" ~name:"b.jpg" ~id:2 ~owner:"Jules";
        ignore (ok (Wepic.run env));
        check_int "one mail" 1
          (List.length (Wdl_wrappers.Email.inbox (Wepic.email env) "Emilien")));
    tc "ratings produce the ranked view" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.upload_picture env ~attendee:"Emilien" ~id:2 ~name:"b.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.rate env ~rater:"Jules" ~owner:"Emilien" ~id:1 ~rating:3;
        Wepic.rate env ~rater:"Jules" ~owner:"Emilien" ~id:2 ~rating:5;
        ignore (ok (Wepic.run env));
        match Wepic.rated_pictures env ~viewer:"Jules" with
        | [ (id1, _, _, r1); (id2, _, _, r2) ] ->
          check_int "best first" 5 r1;
          check_int "best id" 2 id1;
          check_int "then" 3 r2;
          check_int "then id" 1 id2
        | l -> Alcotest.fail (Printf.sprintf "expected 2, got %d" (List.length l)));
    tc "customization: only rating-5 pictures (§4)" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.upload_picture env ~attendee:"Emilien" ~id:2 ~name:"b.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.rate env ~rater:"Jules" ~owner:"Emilien" ~id:2 ~rating:5;
        ignore (ok (Wepic.run env));
        check_int "both before" 2
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules"));
        ok
          (Wepic.customize_view env ~viewer:"Jules"
             (Wepic.min_rating_view_rule ~viewer:"Jules" ~min_rating:5));
        ignore (ok (Wepic.run env));
        check_int "one after" 1
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules"));
        (* Restoring the standard rule restores the frame. *)
        ok
          (Wepic.customize_view env ~viewer:"Jules"
             (Wepic.standard_view_rule ~viewer:"Jules"));
        ignore (ok (Wepic.run env));
        check_int "restored" 2
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules")));
    tc "untrusted mode queues attendee-to-attendee delegations" (fun () ->
        let env = Wepic.create ~untrusted_by_default:true () in
        ignore (Wepic.add_attendee env "Emilien");
        ignore (Wepic.add_attendee env "Jules");
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        check_int "view blocked" 0
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules"));
        let emilien = Wepic.attendee env "Emilien" in
        (* One delegation waits: the attendeePictures residual. The
           transfer rule's communicate@Emilien residual no longer ships
           at this point — the planner applies the WDL031 reorder,
           moving the (still empty) local selectedPictures literal
           ahead of the remote communicate atom, so no valuation
           reaches the delegation point until a picture is selected. *)
        check_int "pending at Emilien" 1
          (List.length (Webdamlog.Peer.pending_delegations emilien));
        ignore (Webdamlog.Peer.accept_all_delegations emilien);
        ignore (ok (Wepic.run env));
        check_int "view live" 1
          (List.length (Wepic.attendee_pictures env ~viewer:"Jules")));
    tc "reserved names rejected" (fun () ->
        let env = Wepic.create () in
        check_bool "sigmod"
          (try ignore (Wepic.add_attendee env "sigmod"); false
           with Invalid_argument _ -> true));
    tc "workload populates deterministically" (fun () ->
        let spec =
          { Workload.default with attendees = 3; pictures_per_attendee = 4 }
        in
        let env1 = Wepic.create () in
        Workload.populate env1 spec;
        ignore (ok (Wepic.run env1));
        let env2 = Wepic.create () in
        Workload.populate env2 spec;
        ignore (ok (Wepic.run env2));
        check_int "attendees" 3 (List.length (Wepic.attendees env1));
        check_int "sigmod pictures" 12 (List.length (Wepic.pictures_at_sigmod env1));
        check_bool "identical"
          (List.map (Format.asprintf "%a" Fact.pp) (Wepic.pictures_at_sigmod env1)
          = List.map (Format.asprintf "%a" Fact.pp) (Wepic.pictures_at_sigmod env2)));
    tc "announcements fan out to every attendee (dynamic head)" (fun () ->
        let env = two_attendees () in
        Wepic.announce env "welcome to sigmod";
        ignore (ok (Wepic.run env));
        check_bool "emilien got it"
          (Wepic.announcements env ~attendee:"Emilien" = [ "welcome to sigmod" ]);
        check_bool "jules got it"
          (Wepic.announcements env ~attendee:"Jules" = [ "welcome to sigmod" ]);
        (* A late joiner receives past announcements: news persists at
           sigmod and the fanout rule re-derives for the new registry
           entry. *)
        ignore (Wepic.add_attendee env "Julia");
        ignore (ok (Wepic.run env));
        check_bool "late joiner too"
          (Wepic.announcements env ~attendee:"Julia" = [ "welcome to sigmod" ]));
    tc "tags collected from owners fill the attendeeTags view" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.tag env ~owner:"Emilien" ~id:1 ~who:"Serge";
        Wepic.tag env ~owner:"Emilien" ~id:1 ~who:"Julia";
        ignore (ok (Wepic.run env));
        check_int "two tags" 2 (List.length (Wepic.attendee_tags env ~viewer:"Jules"));
        check_bool "Serge appears"
          (List.mem (1, "Serge") (Wepic.attendee_tags env ~viewer:"Jules")));
    tc "download copies viewed pictures into the local collection" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        check_int "nothing local yet" 0
          (List.length (Webdamlog.Peer.query (Wepic.attendee env "Jules") "pictures"));
        ok (Wepic.enable_download env ~viewer:"Jules");
        ignore (ok (Wepic.run env));
        check_int "downloaded" 1
          (List.length (Webdamlog.Peer.query (Wepic.attendee env "Jules") "pictures"));
        (* Downloads persist after disabling and even after deselecting. *)
        Wepic.disable_download env ~viewer:"Jules";
        Wepic.deselect_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        check_int "kept" 1
          (List.length (Webdamlog.Peer.query (Wepic.attendee env "Jules") "pictures")));
    tc "attendees can launch their peers mid-demo (§4)" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        ignore (ok (Wepic.run env));
        (* An audience member joins a running system... *)
        ignore (Wepic.add_attendee env "Julia");
        Wepic.upload_picture env ~attendee:"Julia" ~id:9 ~name:"mine.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Julia" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        (* ...and everything works for them immediately. *)
        check_int "her upload reached sigmod" 2
          (List.length (Wepic.pictures_at_sigmod env));
        check_int "her view fills" 1
          (List.length (Wepic.attendee_pictures env ~viewer:"Julia"));
        check_bool "she is registered"
          (List.mem "Julia" (Wepic.attendees env)));
    tc "render_ui shows the Fig. 1 frames" (fun () ->
        let env = two_attendees () in
        Wepic.upload_picture env ~attendee:"Emilien" ~id:1 ~name:"a.jpg" ~data:"d";
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        Wepic.rate env ~rater:"Jules" ~owner:"Emilien" ~id:1 ~rating:4;
        ignore (ok (Wepic.run env));
        let ui = Wepic.render_ui env ~viewer:"Jules" in
        List.iter
          (fun needle -> check_bool needle (Str_helper.contains ui needle))
          [ "[x] Emilien"; "Attendee pictures"; "a.jpg (Emilien) ****" ]);
    tc "render_ui shows pending delegations (Fig. 3)" (fun () ->
        let env = Wepic.create ~untrusted_by_default:true () in
        ignore (Wepic.add_attendee env "Emilien");
        ignore (Wepic.add_attendee env "Jules");
        Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Emilien";
        ignore (ok (Wepic.run env));
        let ui = Wepic.render_ui env ~viewer:"Emilien" in
        check_bool "notification" (Str_helper.contains ui "Pending delegations"));
    tc "facebook comments flow back into fbComments@sigmod" (fun () ->
        let env = two_attendees () in
        ignore
          (Wdl_wrappers.Facebook.comment_group_picture (Wepic.facebook env)
             ~group:"sigmod2013"
             { Wdl_wrappers.Facebook.pic_id = 32; author = "someone";
               text = "great shot" });
        ignore (ok (Wepic.run env));
        match Webdamlog.Peer.query (Wepic.sigmod env) "fbComments" with
        | [ f ] ->
          check_bool "author there"
            (List.mem (Value.String "someone") f.Fact.args)
        | l -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length l)));
    tc "externally-owned facts never block quiescence (regression)" (fun () ->
        (* A picture posted on Facebook by a non-attendee flows to
           sigmod, whose authorization rule would delegate to the
           owner's (nonexistent) peer; with an explicit transport the
           system must still quiesce. *)
        let transport = Wdl_net.Simnet.create ~seed:2 () in
        let env = Wepic.create ~transport () in
        ignore (Wepic.add_attendee env "Emilien");
        ignore
          (Wdl_wrappers.Facebook.post_group_picture (Wepic.facebook env)
             ~group:"sigmod2013"
             { Wdl_wrappers.Facebook.id = 99; name = "ext.jpg";
               owner = "outsider"; data = "d" });
        (match Wepic.run env with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        check_int "flowed back" 1 (List.length (Wepic.pictures_at_sigmod env)));
    tc "scale: a 40-attendee conference converges" (fun () ->
        let env = Wepic.create () in
        Workload.populate env
          { Workload.default with attendees = 40; pictures_per_attendee = 3 };
        let rounds = ok (Wepic.run env) in
        check_bool "bounded rounds" (rounds <= 10);
        check_int "all pictures centralised" 120
          (List.length (Wepic.pictures_at_sigmod env));
        (* Everyone selects everyone: 40 concurrent delegation fans. *)
        let viewer = Workload.attendee_name 1 in
        List.iter
          (fun a -> if a <> viewer then Wepic.select_attendee env ~viewer ~attendee:a)
          (Wepic.attendees env);
        ignore (ok (Wepic.run env));
        check_int "full frame" 117
          (List.length (Wepic.attendee_pictures env ~viewer)));
    tc "generators: chain and random edges" (fun () ->
        check_int "chain" 9 (List.length (Workload.chain_edges ~n:10));
        let e = Workload.random_edges ~seed:1 ~nodes:20 ~edges:50 in
        check_int "count" 50 (List.length e);
        check_bool "no self loops" (List.for_all (fun (a, b) -> a <> b) e);
        check_bool "deterministic"
          (e = Workload.random_edges ~seed:1 ~nodes:20 ~edges:50));
  ]
