(* Wire codec and TCP transport: real distribution substrate. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let msg_equal (a : Message.t) (b : Message.t) =
  a.Message.src = b.Message.src
  && a.Message.dst = b.Message.dst
  && a.Message.stage = b.Message.stage
  && Option.equal (List.equal Fact.equal) a.Message.facts b.Message.facts
  && List.equal Rule.equal a.Message.installs b.Message.installs
  && List.equal Rule.equal a.Message.retracts b.Message.retracts

let sample_rule =
  Parser.parse_rule
    {|attendeePictures@Jules($id, $n, $o, $d) :-
        pictures@Émilien($id, $n, $o, $d), rate@$o($id, 5)|}

let sample_fact =
  Fact.make ~rel:"pictures" ~peer:"sigmod"
    [ Value.Int 32; Value.String "sea \"quoted\".jpg"; Value.String "Émilien";
      Value.Float 0.5; Value.Bool true ]

let roundtrip m = check_bool "round-trip" (msg_equal m (ok' (Wire.decode (Wire.encode m))))

let suite =
  [
    tc "encode/decode: full message" (fun () ->
        roundtrip
          (Message.make ~src:"Jules" ~dst:"Émilien" ~stage:7
             ~facts:(Some [ sample_fact; sample_fact ])
             ~installs:[ sample_rule ] ~retracts:[ sample_rule ] ()));
    tc "encode/decode: facts None vs Some []" (fun () ->
        roundtrip (Message.make ~src:"a" ~dst:"b" ~stage:1 ());
        roundtrip (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some []) ()));
    tc "encode/decode: names needing quoting" (fun () ->
        roundtrip
          (Message.make ~src:"peer with spaces" ~dst:"ext" ~stage:0
             ~facts:(Some [ Fact.make ~rel:"not" ~peer:"ext" [] ])
             ()));
    tc "decode rejects garbage" (fun () ->
        check_bool "garbage" (Result.is_error (Wire.decode "not a frame"));
        check_bool "missing header"
          (Result.is_error (Wire.decode "m@p(1);"));
        check_bool "truncated"
          (Result.is_error
             (Wire.decode
                {|header@wire("a", "b", 1, 3, 0, 0); m@p(1);|})));
    tc "frames are single-line statements" (fun () ->
        let m =
          Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ sample_rule ] ()
        in
        let lines = String.split_on_char '\n' (Wire.encode m) in
        (* header + 1 rule + trailing empty *)
        check_int "lines" 3 (List.length lines));
    tc "batch: empty and singleton shapes" (fun () ->
        check_bool "empty round-trips" (Wire.unbatch (Wire.batch []) = Ok []);
        let m =
          Message.make ~src:"a" ~dst:"b" ~stage:1
            ~facts:(Some [ sample_fact ]) ()
        in
        check_bool "singleton is the old single-message format"
          (Wire.batch [ m ] = Wire.encode m);
        match Wire.unbatch (Wire.batch [ m ]) with
        | Ok [ m' ] -> check_bool "singleton round-trips" (msg_equal m m')
        | _ -> Alcotest.fail "expected a singleton");
    tc "batch: old-format frames still decode (interop)" (fun () ->
        let m =
          Message.make ~src:"Jules" ~dst:"Émilien" ~stage:3
            ~facts:(Some [ sample_fact ]) ~installs:[ sample_rule ] ()
        in
        (* A pre-batching sender emits a bare message frame. *)
        match Wire.unbatch (Wire.encode m) with
        | Ok [ m' ] -> check_bool "decodes as a singleton batch" (msg_equal m m')
        | Ok _ -> Alcotest.fail "wrong arity"
        | Error e -> Alcotest.fail e);
    tc "batch: multi-message frame keeps order and content" (fun () ->
        let mk i =
          Message.make ~src:"a" ~dst:"b" ~stage:i
            ~facts:(Some [ sample_fact ]) ()
        in
        let msgs = [ mk 1; mk 2; mk 3 ] in
        (match Wire.unbatch (Wire.batch msgs) with
        | Ok got -> check_bool "equal" (List.equal msg_equal msgs got)
        | Error e -> Alcotest.fail e);
        check_bool "garbage rejected" (Result.is_error (Wire.unbatch "nope"));
        check_bool "future version rejected"
          (Result.is_error (Wire.unbatch "batch@wire(99, 0);")));
    tc "tcp: send_many rides one connection, in order, and reuses it"
      (fun () ->
        let ta, ca = Wdl_net.Tcp.create () in
        let tb, cb = Wdl_net.Tcp.create () in
        Wdl_net.Tcp.register ca ~peer:"bob"
          { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port cb };
        ta.Wdl_net.Transport.send_many ~dst:"bob"
          [ ("a", "x"); ("c", "y"); ("a", "z") ];
        Alcotest.check (Alcotest.list Alcotest.string) "in order"
          [ "x"; "y"; "z" ]
          (tb.Wdl_net.Transport.drain "bob");
        check_int "one connection opened" 1 (Wdl_net.Tcp.conns_opened ca);
        ta.Wdl_net.Transport.send ~src:"a" ~dst:"bob" "w";
        Alcotest.check (Alcotest.list Alcotest.string) "later send arrives"
          [ "w" ]
          (tb.Wdl_net.Transport.drain "bob");
        check_int "still one connection" 1 (Wdl_net.Tcp.conns_opened ca);
        check_bool "reuse counted" (Wdl_net.Tcp.conns_reused ca >= 1);
        Wdl_net.Tcp.close ca;
        Wdl_net.Tcp.close cb);
    tc "tcp: frame crosses a loopback socket" (fun () ->
        let ta, ca = Wdl_net.Tcp.create () in
        let _tb, cb = Wdl_net.Tcp.create () in
        Wdl_net.Tcp.register ca ~peer:"bob"
          { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port cb };
        ta.Wdl_net.Transport.send ~src:"alice" ~dst:"bob" "hello";
        let tb = _tb in
        let got = tb.Wdl_net.Transport.drain "bob" in
        Wdl_net.Tcp.close ca;
        Wdl_net.Tcp.close cb;
        Alcotest.check (Alcotest.list Alcotest.string) "payload" [ "hello" ] got);
    tc "tcp: local peers short-circuit" (fun () ->
        let t, c = Wdl_net.Tcp.create () in
        t.Wdl_net.Transport.send ~src:"a" ~dst:"b" "x";
        Alcotest.check (Alcotest.list Alcotest.string) "local" [ "x" ]
          (t.Wdl_net.Transport.drain "b");
        Wdl_net.Tcp.close c);
    tc "tcp: large frames survive" (fun () ->
        let ta, ca = Wdl_net.Tcp.create () in
        let tb, cb = Wdl_net.Tcp.create () in
        Wdl_net.Tcp.register ca ~peer:"bob"
          { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port cb };
        let payload = String.make 200_000 'x' in
        ta.Wdl_net.Transport.send ~src:"a" ~dst:"bob" payload;
        (match tb.Wdl_net.Transport.drain "bob" with
        | [ got ] -> check_int "length" 200_000 (String.length got)
        | _ -> Alcotest.fail "expected one frame");
        Wdl_net.Tcp.close ca;
        Wdl_net.Tcp.close cb);
    tc "two systems talk over tcp + wire" (fun () ->
        (* Jules' process and Émilien's process, each with its own
           System, exchanging real bytes over loopback. *)
        let bytes_a, ca = Wdl_net.Tcp.create () in
        let bytes_b, cb = Wdl_net.Tcp.create () in
        Wdl_net.Tcp.register ca ~peer:"Emilien"
          { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port cb };
        Wdl_net.Tcp.register cb ~peer:"Jules"
          { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port ca };
        let sys_a = System.create ~transport:(Wire.transport bytes_a) () in
        let sys_b = System.create ~transport:(Wire.transport bytes_b) () in
        let jules = System.add_peer sys_a "Jules" in
        let emilien = System.add_peer sys_b "Emilien" in
        ok'
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i);
               sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok'
          (Peer.load_string emilien
             "ext pics@Emilien(i); pics@Emilien(1); pics@Emilien(2);");
        (* Alternate rounds until both processes are idle. *)
        for _ = 1 to 8 do
          ignore (System.round sys_a);
          ignore (System.round sys_b)
        done;
        Wdl_net.Tcp.close ca;
        Wdl_net.Tcp.close cb;
        check_int "delegation crossed processes" 1
          (List.length (Peer.delegated_rules emilien));
        check_int "facts flowed back" 2 (List.length (Peer.query jules "view")));
  ]

(* {1 Batch codec property} *)

let msg_gen =
  QCheck.Gen.(
    let name = oneofl [ "a"; "b"; "Jules"; "Émilien"; "peer with spaces" ] in
    let value =
      oneof
        [
          map (fun i -> Value.Int i) small_signed_int;
          map (fun s -> Value.String s) (oneofl [ "x"; {|é "quoted|}; "" ]);
          map (fun b -> Value.Bool b) bool;
        ]
    in
    let fact =
      let* rel = oneofl [ "pictures"; "album"; "m" ] in
      let* peer = name in
      let* args = list_size (int_bound 3) value in
      return (Fact.make ~rel ~peer args)
    in
    let* src = name in
    let* dst = name in
    let* stage = int_bound 100 in
    let* facts = option (list_size (int_bound 4) fact) in
    let* installs = list_size (int_bound 2) (return sample_rule) in
    let* retracts = list_size (int_bound 1) (return sample_rule) in
    return (Message.make ~src ~dst ~stage ~facts ~installs ~retracts ()))

let batch_prop =
  QCheck.Test.make ~count:200
    ~name:"batch/unbatch round-trips every message list (incl. [] and [m])"
    (QCheck.make QCheck.Gen.(list_size (int_bound 6) msg_gen))
    (fun msgs ->
      match Wire.unbatch (Wire.batch msgs) with
      | Error e -> QCheck.Test.fail_reportf "unbatch failed: %s" e
      | Ok got ->
        if List.equal msg_equal msgs got then true
        else QCheck.Test.fail_report "decoded batch differs")

let suite = suite @ [ QCheck_alcotest.to_alcotest batch_prop ]
