open Wdl_syntax
module FB = Wdl_wrappers.Facebook
module Email = Wdl_wrappers.Email
module Dropbox = Wdl_wrappers.Dropbox
module Wrapper = Wdl_wrappers.Wrapper

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let pic id name owner = { FB.id; name; owner; data = "d" ^ string_of_int id }

let suite =
  [
    tc "facebook service: users and symmetric friendship" (fun () ->
        let fb = FB.create () in
        FB.befriend fb "joe" "alice";
        check_bool "joe->alice" (FB.friends fb "joe" = [ "alice" ]);
        check_bool "alice->joe" (FB.friends fb "alice" = [ "joe" ]);
        check_bool "users" (FB.users fb = [ "joe"; "alice" ]));
    tc "facebook service: groups, membership, picture dedup" (fun () ->
        let fb = FB.create () in
        FB.create_group fb "g";
        FB.join_group fb ~user:"u1" ~group:"g";
        FB.join_group fb ~user:"u1" ~group:"g";
        check_int "one member" 1 (List.length (FB.members fb ~group:"g"));
        check_bool "post" (FB.post_group_picture fb ~group:"g" (pic 1 "a" "u1"));
        check_bool "dup id" (not (FB.post_group_picture fb ~group:"g" (pic 1 "b" "u2")));
        check_int "one picture" 1 (List.length (FB.group_pictures fb ~group:"g")));
    tc "facebook service: comments dedup, walls" (fun () ->
        let fb = FB.create () in
        let c = { FB.pic_id = 1; author = "a"; text = "nice" } in
        check_bool "first" (FB.comment_group_picture fb ~group:"g" c);
        check_bool "dup" (not (FB.comment_group_picture fb ~group:"g" c));
        check_bool "wall post" (FB.post_user_picture fb ~user:"u" (pic 2 "w" "u"));
        check_int "wall" 1 (List.length (FB.user_pictures fb ~user:"u")));
    tc "group wrapper: refresh pulls service state into relations" (fun () ->
        let sys = Webdamlog.System.create () in
        let fb = FB.create () in
        ignore (FB.post_group_picture fb ~group:"g" (pic 1 "a" "u1"));
        let w, peer = FB.group_wrapper ~system:sys ~service:fb ~group:"g" ~peer_name:"gfb" in
        check_int "pulled" 1 (w.Wrapper.refresh ());
        check_int "idempotent" 0 (w.Wrapper.refresh ());
        check_int "relation" 1 (List.length (Webdamlog.Peer.query peer "pictures")));
    tc "group wrapper: push posts new relation facts to the service" (fun () ->
        let sys = Webdamlog.System.create () in
        let fb = FB.create () in
        let w, peer = FB.group_wrapper ~system:sys ~service:fb ~group:"g" ~peer_name:"gfb" in
        ok
          (Webdamlog.Peer.insert peer
             (Fact.make ~rel:"pictures" ~peer:"gfb"
                [ Value.Int 5; Value.String "n"; Value.String "o"; Value.String "d" ]));
        check_int "pushed" 1 (w.Wrapper.push ());
        check_int "in service" 1 (List.length (FB.group_pictures fb ~group:"g"));
        check_int "no double post" 0 (w.Wrapper.push ()));
    tc "group wrapper: two-way without echo loops" (fun () ->
        let sys = Webdamlog.System.create () in
        let fb = FB.create () in
        let w, _peer = FB.group_wrapper ~system:sys ~service:fb ~group:"g" ~peer_name:"gfb" in
        ignore (FB.post_group_picture fb ~group:"g" (pic 1 "a" "u1"));
        ignore (w.Wrapper.refresh ());
        (* The picture that came from the service must not be re-posted
           as a new one. *)
        ignore (w.Wrapper.push ());
        check_int "still one" 1 (List.length (FB.group_pictures fb ~group:"g")));
    tc "user wrapper exports the paper's two relations" (fun () ->
        let sys = Webdamlog.System.create () in
        let fb = FB.create () in
        FB.befriend fb "Émilien" "Jules";
        ignore (FB.post_user_picture fb ~user:"Émilien" (pic 9 "p" "Émilien"));
        let w, peer =
          FB.user_wrapper ~system:sys ~service:fb ~user:"Émilien" ~peer_name:"ÉmilienFB"
        in
        ignore (w.Wrapper.refresh ());
        check_int "friends" 1 (List.length (Webdamlog.Peer.query peer "friends"));
        check_int "pictures" 1 (List.length (Webdamlog.Peer.query peer "pictures")));
    tc "email service: send and inbox ordering" (fun () ->
        let svc = Email.create () in
        ignore (Email.send svc ~sender:"a" ~recipient:"b" ~subject:"s1" ~body:"");
        ignore (Email.send svc ~sender:"a" ~recipient:"b" ~subject:"s2" ~body:"");
        (match Email.inbox svc "b" with
        | [ m1; m2 ] ->
          Alcotest.check Alcotest.string "first" "s1" m1.Email.subject;
          Alcotest.check Alcotest.string "second" "s2" m2.Email.subject
        | _ -> Alcotest.fail "expected two");
        check_int "total" 2 (Email.total_sent svc));
    tc "email outbox wrapper sends once per fact" (fun () ->
        let svc = Email.create () in
        let peer = Webdamlog.Peer.create "p" in
        ok (Webdamlog.Peer.load_string peer "ext email@p(to, name, id, owner);");
        let w = Email.outbox_wrapper ~service:svc ~peer ~sender:"p" () in
        ok
          (Webdamlog.Peer.insert peer
             (Fact.make ~rel:"email" ~peer:"p"
                [ Value.String "bob"; Value.String "sea.jpg"; Value.Int 1;
                  Value.String "o" ]));
        check_int "sent" 1 (w.Wrapper.push ());
        check_int "no resend" 0 (w.Wrapper.push ());
        match Email.inbox svc "bob" with
        | [ m ] -> check_bool "subject" (m.Email.subject = "wepic picture: sea.jpg")
        | _ -> Alcotest.fail "expected one mail");
    tc "email inbox wrapper mirrors the mailbox" (fun () ->
        let svc = Email.create () in
        let peer = Webdamlog.Peer.create "p" in
        ignore (Email.send svc ~sender:"x" ~recipient:"me" ~subject:"hi" ~body:"b");
        let w = Email.inbox_wrapper ~service:svc ~peer ~user:"me" () in
        check_int "pulled" 1 (w.Wrapper.refresh ());
        check_int "idempotent" 0 (w.Wrapper.refresh ());
        check_int "inbox relation" 1 (List.length (Webdamlog.Peer.query peer "inbox")));
    tc "dropbox: put/get/files" (fun () ->
        let svc = Dropbox.create () in
        Dropbox.put svc ~user:"u" ~path:"/a" ~content:"1";
        Dropbox.put svc ~user:"u" ~path:"/a" ~content:"2";
        check_bool "overwrite" (Dropbox.get svc ~user:"u" ~path:"/a" = Some "2");
        check_bool "missing" (Dropbox.get svc ~user:"u" ~path:"/zz" = None);
        Dropbox.put svc ~user:"u" ~path:"/b" ~content:"3";
        check_bool "sorted" (List.map fst (Dropbox.files svc ~user:"u") = [ "/a"; "/b" ]));
    tc "dropbox folder wrapper is two-way" (fun () ->
        let sys = Webdamlog.System.create () in
        let svc = Dropbox.create () in
        Dropbox.put svc ~user:"u" ~path:"/x" ~content:"c";
        let w, peer =
          Dropbox.folder_wrapper ~system:sys ~service:svc ~user:"u" ~peer_name:"udbx"
        in
        check_int "pull" 1 (w.Wrapper.refresh ());
        ok
          (Webdamlog.Peer.insert peer
             (Fact.make ~rel:"files" ~peer:"udbx"
                [ Value.String "/y"; Value.String "new" ]));
        ignore (w.Wrapper.push ());
        check_bool "pushed" (Dropbox.get svc ~user:"u" ~path:"/y" = Some "new"));
    tc "wordpress service: publish dedupes by title, comments attach" (fun () ->
        let wp = Wdl_wrappers.Wordpress.create () in
        check_bool "first"
          (Wdl_wrappers.Wordpress.publish wp ~blog:"joeBlog"
             { Wdl_wrappers.Wordpress.title = "Dream"; body = "5 stars";
               link = "/movies/dream.mkv" });
        check_bool "dup title"
          (not
             (Wdl_wrappers.Wordpress.publish wp ~blog:"joeBlog"
                { Wdl_wrappers.Wordpress.title = "Dream"; body = "other";
                  link = "x" }));
        check_bool "comment"
          (Wdl_wrappers.Wordpress.add_comment wp ~blog:"joeBlog"
             { Wdl_wrappers.Wordpress.post_title = "Dream"; author = "alice";
               text = "nice" });
        check_int "posts" 1
          (List.length (Wdl_wrappers.Wordpress.posts wp ~blog:"joeBlog")));
    tc "wordpress blog wrapper: derive into entries to publish" (fun () ->
        let sys = Webdamlog.System.create () in
        let wp = Wdl_wrappers.Wordpress.create () in
        let w, peer =
          Wdl_wrappers.Wordpress.blog_wrapper ~system:sys ~service:wp
            ~blog:"joeBlog" ~peer_name:"joeBlog"
        in
        let joe = Webdamlog.System.add_peer sys "joe" in
        ok
          (Webdamlog.Peer.load_string joe
             {|ext reviews@joe(title, body);
               reviews@joe("Dream", "5 stars");
               entries@joeBlog($t, $b, "none") :- reviews@joe($t, $b);|});
        ignore (ok (Webdamlog.System.run sys));
        check_int "pushed to service" 1 (w.Wrapper.push ());
        check_int "on the blog" 1
          (List.length (Wdl_wrappers.Wordpress.posts wp ~blog:"joeBlog"));
        (* Externally published posts flow back in. *)
        ignore
          (Wdl_wrappers.Wordpress.publish wp ~blog:"joeBlog"
             { Wdl_wrappers.Wordpress.title = "Other"; body = "b"; link = "l" });
        check_bool "refresh pulls" (w.Wrapper.refresh () > 0);
        check_int "entries relation" 2
          (List.length (Webdamlog.Peer.query peer "entries")));
    tc "watcher sees facts that arrive later" (fun () ->
        let peer = Webdamlog.Peer.create "p" in
        ok (Webdamlog.Peer.load_string peer "ext r@p(x);");
        let seen = ref [] in
        let watch = Wrapper.watcher ~peer ~rel:"r" (fun f -> seen := f :: !seen) in
        check_int "initially none" 0 (watch ());
        ok (Webdamlog.Peer.insert peer (Fact.make ~rel:"r" ~peer:"p" [ Value.Int 1 ]));
        check_int "one" 1 (watch ());
        ok (Webdamlog.Peer.insert peer (Fact.make ~rel:"r" ~peer:"p" [ Value.Int 2 ]));
        check_int "another" 1 (watch ());
        check_int "total" 2 (List.length !seen));
    tc "watcher with bloom dedup fires once per fact, bounded memory" (fun () ->
        let peer = Webdamlog.Peer.create "p" in
        ok (Webdamlog.Peer.load_string peer "ext r@p(x);");
        let fired = ref 0 in
        let watch =
          Wrapper.watcher ~dedup:(`Bloom 1024) ~peer ~rel:"r" (fun _ -> incr fired)
        in
        for i = 1 to 50 do
          ok
            (Webdamlog.Peer.insert peer
               (Fact.make ~rel:"r" ~peer:"p" [ Value.Int i ]))
        done;
        check_int "first sweep" 50 (watch ());
        check_int "second sweep is silent" 0 (watch ());
        check_int "action count" 50 !fired);
  ]
